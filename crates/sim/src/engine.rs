//! The block-driven marketplace engine.
//!
//! [`MarketSim`] multiplexes hundreds of Π_hit instances over one
//! simulated chain hosting a [`HitRegistry`]. Each block it:
//!
//! 1. publishes up to `spawn_per_block` new HITs (factory `Create`
//!    transactions, budget frozen into per-instance escrow),
//! 2. snapshots every live instance's phase and lets the agent pools
//!    react — workers race for commit slots (optionally overbooked so
//!    `TaskFull` contention actually happens), accepted workers reveal,
//!    requesters open gold standards, challenge bad submissions and
//!    finalize,
//! 3. advances the chain one round under the configured mempool policy
//!    (honest FIFO, reverse, or a designated front-runner), and
//! 4. harvests events into per-block and per-HIT metrics.
//!
//! Everything — key generation, workloads, worker noise, scheduling —
//! derives from the single `MarketConfig::seed`, so a run is exactly
//! reproducible, and a `PerProof` vs `Batched` pair of runs with the
//! same seed settles every worker identically (asserted by the
//! `tests/marketplace.rs` equivalence test).

use crate::agents::{RequesterAgent, WorkerAgent};
use crate::config::{BehaviorMix, MarketConfig, MarketPolicy};
use crate::metrics::{BlockStat, HitOutcome, MarketReport};
use dragoon_chain::mempool::PendingTx;
use dragoon_chain::store::{BlockStore, StoreError};
use dragoon_chain::{
    resolve_threads, Chain, FifoPolicy, FrontRunPolicy, GasSchedule, ReorderPolicy, ReversePolicy,
};
use dragoon_contract::SettlementMode;
use dragoon_contract::{
    HitEvent, HitId, HitMessage, HitRegistry, Phase, RegistryEvent, RegistryMessage, RejectReason,
    Settlement, REGISTRY_CODE_LEN,
};
use dragoon_core::task::EncryptedAnswer;
use dragoon_core::workload::generate_workload;
use dragoon_crypto::commitment::Commitment;
use dragoon_crypto::elgamal::PlaintextRange;
use dragoon_crypto::precomp::{CacheStats, ProofCache};
use dragoon_econ::{EconEngine, JoinDecision};
use dragoon_ledger::Address;
use dragoon_net::NetSim;
use dragoon_protocol::{
    CommitArtifacts, ContentStore, JobKey, ProofJob, ProofPhase, ProvingService, Requester,
    Verdict, Worker, WorkerBehavior,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A read-only snapshot of one live instance, taken between blocks so
/// agent reactions don't fight the chain borrow.
struct HitSnapshot {
    id: HitId,
    agent: usize,
    phase: Phase,
    committed: Vec<Address>,
    k: usize,
    budget: u128,
    commit_deadline: Option<u64>,
    revealed: Vec<(Address, EncryptedAnswer)>,
    golden_open: bool,
    evaluate_deadline: Option<u64>,
    settled_workers: BTreeSet<Address>,
}

/// What one proof job hands back to the engine when its modeled latency
/// elapses. Every agent-step submission — including zero-cost control
/// messages — flows through one of these, so the mempool admission
/// order is a function of `(ready_tick, enqueue_seq)` alone and is
/// identical whether the proving service is enabled or not.
enum JobOutput {
    /// A commit proof finished: install the artifacts into the worker's
    /// session and submit the commit message.
    Commit {
        wi: usize,
        artifacts: CommitArtifacts,
    },
    /// A reveal opening finished (`None` for non-revealing behaviours).
    Reveal { wi: usize, msg: Option<HitMessage> },
    /// An evaluation finished: the requester's verdict per revealed
    /// worker, decided and proven off the hot path.
    Verdicts {
        agent: usize,
        verdicts: Vec<(Address, Verdict)>,
        cartel: bool,
    },
    /// A zero-cost control message (cancel, golden, reject flush,
    /// finalize) routed through the queue purely for ordering.
    Direct { sender: Address, msg: HitMessage },
}

/// The marketplace engine. Build with [`MarketSim::new`], run with
/// [`MarketSim::run`].
pub struct MarketSim {
    config: MarketConfig,
    chain: Chain<HitRegistry>,
    requesters: Vec<RequesterAgent>,
    workers: Vec<WorkerAgent>,
    next_publish: usize,
    /// Requester address → agent index (addresses are fixed at setup).
    agent_by_addr: BTreeMap<Address, usize>,
    agent_of_hit: BTreeMap<HitId, usize>,
    /// Worker indices that joined (or tried to join) each hit.
    joined: BTreeMap<HitId, Vec<usize>>,
    /// Commitments visible for each hit (mempool observation, for the
    /// copy-paste behaviour).
    observed: BTreeMap<HitId, Vec<Commitment>>,
    settled_hits: BTreeSet<HitId>,
    settled_block: BTreeMap<HitId, u64>,
    cancelled_hits: BTreeSet<HitId>,
    block_stats: Vec<BlockStat>,
    /// Settle-before-publish clock violations (see
    /// [`MarketReport::latency_violations`]).
    latency_violations: usize,
    events_seen: usize,
    rewards_paid: u128,
    workers_paid: usize,
    refunds: u128,
    /// The econ layer runtime (`None` when `config.econ` is disabled).
    econ: Option<EconEngine>,
    /// The network layer runtime (`None` when `config.net` is unset):
    /// every canonical submission and produced block fans out to a
    /// simulated gossip network of full replicas.
    net: Option<NetSim<HitRegistry>>,
    /// Next churn-arrival sequence number (continues the initial pool's
    /// address derivation).
    next_worker_index: u64,
    /// The proving pipeline: every agent-step submission flows through
    /// it as a keyed job (inline at zero latency when disabled).
    proving: ProvingService<JobOutput>,
    /// The keyed proof cache (fixed-base tables per encryption key),
    /// shared with the proving workers and — via
    /// [`MarketSim::new_with_cache`] — across runs.
    cache: Arc<ProofCache>,
    /// Cache counters at construction, so a shared cache reports per-run
    /// deltas instead of lifetime totals.
    cache_base: CacheStats,
    /// Commitments that became visible this round, appended to
    /// `observed` only after the round's jobs are built: an observing
    /// copy-paste attacker replays *prior rounds'* commitments, which
    /// keeps the observation set identical whether this round's commit
    /// proofs are computed inline or released later by the async pool.
    observed_buffer: Vec<(HitId, Commitment)>,
    /// The on-disk block store (`None` when `config.persist` is unset):
    /// every produced block's executed transaction list appends to the
    /// log, with full state snapshots on the configured cadence.
    store: Option<BlockStore>,
}

/// Deterministic weighted behaviour assignment by pool position — the
/// same draw for the initial pool and for churn arrivals.
fn behavior_for(mix: &BehaviorMix, index: u64) -> WorkerBehavior {
    let total_weight: u32 = mix.iter().map(|(_, w)| *w).sum();
    assert!(total_weight > 0, "behaviour mix must have positive weight");
    let mut ticket = (index as u32).wrapping_mul(7919) % total_weight;
    mix.iter()
        .find_map(|(b, w)| {
            if ticket < *w {
                Some(b.clone())
            } else {
                ticket -= w;
                None
            }
        })
        .expect("ticket < total_weight")
}

/// The per-requester mint: the scenario budget, or the dynamic-pricing
/// ceiling when the econ controller can push publish-time budgets above
/// it.
fn publish_headroom(config: &MarketConfig) -> u128 {
    config
        .econ
        .enabled
        .then(|| config.econ.pricing.map(|p| p.max))
        .flatten()
        .unwrap_or(config.budget)
        .max(config.budget)
}

/// The genesis every chain of a run starts from: the registry
/// deployment plus the requester mints. The canonical chain, every
/// network replica, and crash recovery ([`recover_market_chain`]) all
/// build the same genesis, so replaying the same blocks lands on
/// bit-identical state.
fn genesis_chain(
    settlement: SettlementMode,
    threads: usize,
    hits: u64,
    headroom: u128,
) -> Chain<HitRegistry> {
    let mut chain = Chain::deploy(
        HitRegistry::new(settlement).with_verify_threads(threads),
        REGISTRY_CODE_LEN,
        GasSchedule::istanbul(),
    );
    for i in 0..hits {
        chain
            .ledger
            .mint(Address::from_seed(0xd1a6_0000 + i), headroom);
    }
    chain
}

/// Recovers the chain of a persisted run from its block store: the
/// genesis this config deploys, restored from the newest valid
/// snapshot, with the block-log tail replayed on top. The result is
/// bit-identical ([`Chain::state_image`]) to the chain the live run
/// held after its last persisted block — the crash-recovery
/// differential in `tests/crash_recovery.rs` pins this byte for byte.
pub fn recover_market_chain(config: &MarketConfig) -> Result<Chain<HitRegistry>, StoreError> {
    let persist = config
        .persist
        .as_ref()
        .expect("recover_market_chain needs config.persist");
    let genesis = genesis_chain(
        config.settlement,
        resolve_threads(config.exec_threads),
        config.hits as u64,
        publish_headroom(config),
    );
    Chain::recover_from(&persist.dir, genesis)
}

impl MarketSim {
    /// Sets up the chain, registry and agent pools from a config, with a
    /// fresh (cold) proof cache.
    pub fn new(config: MarketConfig) -> Self {
        Self::new_with_cache(config, Arc::new(ProofCache::new()))
    }

    /// Like [`MarketSim::new`], but sharing an existing proof cache — a
    /// second run over the same requester keys starts prewarmed (the
    /// cold-vs-prewarmed bench differential). Cache stats reported for
    /// the run are deltas from the handed-in cache's counters.
    pub fn new_with_cache(config: MarketConfig, cache: Arc<ProofCache>) -> Self {
        assert!(config.hits > 0, "a market needs at least one HIT");
        assert!(config.workers > 0, "a market needs workers");
        let mut rng = StdRng::seed_from_u64(config.seed);
        // One resolved thread budget drives both the parallel block
        // executor and block-boundary settlement verification.
        let threads = resolve_threads(config.exec_threads);
        let headroom = publish_headroom(&config);
        let mut chain = genesis_chain(config.settlement, threads, config.hits as u64, headroom)
            .with_exec_threads(threads);
        if let Some(limit) = config.block_gas_limit {
            chain = chain.with_block_gas_limit(limit);
        }
        if config.clone_checkpointing {
            chain = chain.with_clone_checkpointing();
        }
        // The econ layer: reputation, pricing, churn and adversary
        // classification, constructed before the agent pools so cartel
        // requesters can shape their workloads (strict θ) at generation.
        let base_reward = config.budget / config.k.max(1) as u128;
        let mut econ = config.econ.enabled.then(|| {
            EconEngine::for_market(
                config.econ.clone(),
                config.seed,
                config.budget,
                config.block_gas_limit,
            )
        });
        let mut store = ContentStore::new();
        let mut requesters = Vec::with_capacity(config.hits);
        for i in 0..config.hits as u64 {
            let addr = Address::from_seed(0xd1a6_0000 + i);
            let theta = econ.as_mut().map_or(config.theta, |e| {
                e.register_requester(i as usize, addr);
                e.theta_for(i as usize, config.golds, config.theta)
            });
            let workload = generate_workload(
                config.questions,
                config.golds,
                config.k,
                theta,
                PlaintextRange::binary(),
                config.budget,
                &mut rng,
            );
            let client = Requester::new(addr, &workload, &mut store, &mut rng);
            requesters.push(RequesterAgent::new(addr, client, workload));
        }
        let workers = (0..config.workers as u64)
            .map(|i| {
                let addr = Address::from_seed(0x3031_0000 + i);
                if let Some(e) = &mut econ {
                    e.register_worker(i as usize, addr, base_reward);
                }
                WorkerAgent::new(addr, behavior_for(&config.behavior_mix, i))
            })
            .collect();
        let agent_by_addr = requesters
            .iter()
            .enumerate()
            .map(|(i, a)| (a.addr, i))
            .collect();
        let next_worker_index = config.workers as u64;
        // The network layer: every replica starts from the exact genesis
        // the canonical chain started from (same registry deployment,
        // same requester mints), so a replica that has applied every
        // canonical block holds bit-identical state. Replicas replay
        // blocks serially — the producer already enforced the gas limit
        // and resolved execution order — so they carry no executor or
        // gas-cap configuration of their own.
        let net = config.net.clone().map(|net_cfg| {
            let settlement = config.settlement;
            let hits = config.hits as u64;
            NetSim::new(net_cfg, config.seed ^ 0x6e65_7477_6f72_6b00, move || {
                genesis_chain(settlement, threads, hits, headroom)
            })
        });
        // The block store wipes any previous run's artifacts in the
        // directory and opens a fresh append handle.
        let block_store = config.persist.as_ref().map(|p| {
            BlockStore::create(&p.dir, p.snapshot_every)
                .expect("block store dir must be writable")
                .with_flush_every(p.flush_every)
                .with_incremental(p.incremental)
                .with_compaction(p.compact_log)
                .with_background_writer(p.background_writer)
        });
        if net.is_some() || block_store.is_some() {
            // Record each produced block's executed transaction list so
            // the run loop can hand it to the gossip layer and/or the
            // block store.
            chain.set_record_block_txs(true);
        }
        let proving = ProvingService::new(config.seed, threads, config.proving);
        let cache_base = cache.stats();
        Self {
            config,
            chain,
            requesters,
            workers,
            next_publish: 0,
            agent_by_addr,
            agent_of_hit: BTreeMap::new(),
            joined: BTreeMap::new(),
            observed: BTreeMap::new(),
            settled_hits: BTreeSet::new(),
            settled_block: BTreeMap::new(),
            cancelled_hits: BTreeSet::new(),
            block_stats: Vec::new(),
            latency_violations: 0,
            events_seen: 0,
            rewards_paid: 0,
            workers_paid: 0,
            refunds: 0,
            econ,
            net,
            next_worker_index,
            proving,
            cache,
            cache_base,
            observed_buffer: Vec::new(),
            store: block_store,
        }
    }

    /// Submits a transaction to the canonical chain and — with the
    /// network layer on — gossips it to every replica's mempool.
    fn submit_tx(&mut self, sender: Address, msg: RegistryMessage) {
        if let Some(net) = &mut self.net {
            let seq = self.chain.submit(sender, msg.clone());
            net.gossip_tx(PendingTx { sender, msg, seq });
        } else {
            self.chain.submit(sender, msg);
        }
    }

    /// Runs the market to completion (every HIT settled) or to
    /// `max_blocks`, returning the report.
    pub fn run(self) -> MarketReport {
        self.run_keeping_chain().0
    }

    /// Like [`MarketSim::run`], but also hands back the chain so tests
    /// can audit post-run ledger state (escrow conservation under churn,
    /// per-instance balances).
    pub fn run_keeping_chain(self) -> (MarketReport, Chain<HitRegistry>) {
        let (report, chain, _) = self.run_keeping_net();
        (report, chain)
    }

    /// Like [`MarketSim::run_keeping_chain`], but also hands back the
    /// network simulation (when configured) so tests can audit every
    /// replica's final state against the canonical chain — the
    /// convergence differential.
    pub fn run_keeping_net(
        mut self,
    ) -> (
        MarketReport,
        Chain<HitRegistry>,
        Option<NetSim<HitRegistry>>,
    ) {
        let mut fifo = FifoPolicy;
        let mut reverse = ReversePolicy;
        let mut front_run = FrontRunPolicy::new(self.workers[0].addr);
        loop {
            let done = self.next_publish >= self.config.hits
                && self.settled_hits.len() >= self.agent_of_hit.len()
                && self.agent_of_hit.len() >= self.config.hits;
            if done || self.chain.round() >= self.config.max_blocks {
                break;
            }
            self.publish_step();
            self.agent_step();
            let policy: &mut dyn ReorderPolicy<RegistryMessage> = match self.config.policy {
                MarketPolicy::Fifo => &mut fifo,
                MarketPolicy::Reverse => &mut reverse,
                MarketPolicy::FrontRun => &mut front_run,
            };
            // Optimistic parallel execution over disjoint HIT instances;
            // delegates to the serial path at one thread or under the
            // clone-checkpoint baseline. Reports are identical either
            // way (tests/parallel_equivalence.rs).
            {
                let _sp =
                    dragoon_trace::span(dragoon_trace::SpanKind::Execute, self.chain.round() + 1);
                self.chain.advance_round_parallel(policy);
            }
            if let Some(obs) = self.chain.last_observation() {
                dragoon_trace::event(
                    dragoon_trace::SpanKind::Execute,
                    obs.round,
                    &[
                        ("height", obs.round),
                        ("txs", obs.txs as u64),
                        ("reverted", obs.reverted as u64),
                        ("gas", obs.gas_used),
                    ],
                );
            }
            // Durability boundary: the produced block's executed
            // transaction list appends to the on-disk log (and a full
            // state snapshot lands on the configured cadence) before
            // the market reacts to it — a crash after this point loses
            // nothing.
            if let Some(store) = &mut self.store {
                self.chain
                    .persist_block(store)
                    .expect("block store append must succeed");
            }
            // One network tick per market round: the produced block's
            // executed transaction list fans out to the replicas.
            if let Some(net) = &mut self.net {
                net.broadcast_block(self.chain.last_block_txs().to_vec());
            }
            self.harvest();
            // Pipeline stage 3: kick block N's batched settlement
            // verification onto a background thread, so it overlaps
            // round N+1's agent-step generation and proving. The next
            // clock tick joins it before the first settlement verdict
            // is read; between here and there only the mempool fills,
            // so the pending set cannot change and the precomputed
            // verdicts apply (registry misses fall back inline).
            if self
                .config
                .persist
                .as_ref()
                .is_some_and(|p| p.overlap_verify)
            {
                self.chain.contract_mut().begin_overlap_verify();
            }
        }
        // Run-end barriers, in pipeline order: no verifier thread
        // outlives the run, and every handed-off block frame and
        // snapshot is on disk before the report is built (crash
        // recovery reads these files).
        self.chain.contract_mut().join_overlap();
        if let Some(store) = &mut self.store {
            let (hits, misses) = self.chain.contract().overlap_stats();
            store.record_overlap(hits, misses);
            store.drain().expect("block store drain must succeed");
        }
        // The market is done producing; let the network converge
        // (queued deliveries land, partitions heal on schedule, forks
        // reorg away).
        if let Some(net) = &mut self.net {
            net.drain();
        }
        // Whatever the proving queue still holds was overtaken by the
        // deadline backstops (its HIT settled ⊥ without the proof) —
        // count it dropped.
        self.proving.finish();
        let report = self.build_report();
        (report, self.chain, self.net)
    }

    /// Submits this block's `Create` transactions. With dynamic pricing
    /// enabled, each new HIT freezes the controller's *current* price as
    /// its budget `B` instead of the scenario default.
    fn publish_step(&mut self) {
        let mut spawned = 0;
        while self.next_publish < self.config.hits && spawned < self.config.spawn_per_block {
            let agent = &self.requesters[self.next_publish];
            let addr = agent.addr;
            let HitMessage::Publish(mut params) = agent.client.publish_msg() else {
                unreachable!("publish_msg returns Publish");
            };
            if let Some(e) = &self.econ {
                params.budget = e.next_budget(params.budget);
            }
            let windows = self.config.windows;
            self.submit_tx(addr, RegistryMessage::Create { windows, params });
            self.next_publish += 1;
            spawned += 1;
        }
    }

    /// Snapshots every live instance.
    fn snapshots(&self) -> Vec<HitSnapshot> {
        let registry = self.chain.contract();
        let mut out = Vec::new();
        for (&id, &agent) in &self.agent_of_hit {
            if self.settled_hits.contains(&id) {
                continue;
            }
            let Some(hit) = registry.hit(id) else {
                continue;
            };
            if hit.is_settled() {
                continue;
            }
            let committed = hit.committed_workers().to_vec();
            // Revealed ciphertexts are only consumed by the one block in
            // which the requester decides its verdicts — skip the clones
            // everywhere else (they dominate snapshot cost otherwise).
            // Honest requesters decide after their golden opening
            // confirms; cartel requesters decide *before*, off-chain, so
            // the golden can be withheld when nothing is rejectable.
            let peeks_early = self
                .econ
                .as_ref()
                .is_some_and(|e| e.is_cartel(&self.requesters[agent].addr))
                && !self.requesters[agent].verdicts_ready;
            let wants_reveals = peeks_early
                || (hit.golden().is_some()
                    && !self.requesters[agent].verdicts_sent
                    && !self.requesters[agent].verdicts_ready);
            let revealed = if hit.phase() == Phase::Evaluate && wants_reveals {
                committed
                    .iter()
                    .filter_map(|w| hit.revealed(w).map(|cts| (*w, cts.clone())))
                    .collect()
            } else {
                Vec::new()
            };
            let settled_workers = committed
                .iter()
                .filter(|w| hit.settlement(w).is_some())
                .copied()
                .collect();
            out.push(HitSnapshot {
                id,
                agent,
                phase: hit.phase(),
                committed,
                k: hit.params().map_or(0, |p| p.k),
                budget: hit.params().map_or(0, |p| p.budget),
                commit_deadline: hit.commit_deadline(),
                revealed,
                golden_open: hit.golden().is_some(),
                evaluate_deadline: hit.evaluate_deadline(),
                settled_workers,
            });
        }
        out
    }

    /// Lets workers and requesters react to every live instance.
    ///
    /// Order matters for determinism: (1) proof jobs from earlier
    /// rounds whose latency has elapsed release first, (2) the drives
    /// enqueue this round's jobs, (3) the batch computes, (4) zero-
    /// latency outputs release, (5) this round's commitments join the
    /// observation set, (6) everything released this round enters the
    /// mempool in release order. With the service disabled every job is
    /// zero-latency, so steps 1 and 4 collapse into the classic
    /// synchronous round — byte-identical reports.
    fn agent_step(&mut self) {
        let round = self.chain.round();
        let mut submissions: Vec<(Address, RegistryMessage)> = Vec::new();
        self.process_ready(round, &mut submissions);
        let snapshots = self.snapshots();
        // Reputation-ordered worker selection: one ranking per block
        // (scores only move at harvest), shared by every commit-phase
        // HIT — high-reputation workers get first claim on fresh slots,
        // and the per-worker capacity cap spreads the load.
        let ranked: Option<Vec<usize>> =
            self.econ.as_ref().filter(|e| e.orders_by_score()).map(|e| {
                let mut candidates: Vec<(usize, Address)> = self
                    .workers
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.active)
                    .map(|(i, w)| (i, w.addr))
                    .collect();
                e.rank(&mut candidates, round);
                candidates.into_iter().map(|(i, _)| i).collect()
            });
        let mut jobs: Vec<ProofJob<JobOutput>> = Vec::new();
        for snap in &snapshots {
            match snap.phase {
                Phase::Commit => self.drive_commit(snap, round, ranked.as_deref(), &mut jobs),
                Phase::Reveal => self.drive_reveal(snap, &mut jobs),
                Phase::Evaluate => self.drive_evaluate(snap, round, &mut jobs),
                Phase::Setup | Phase::Closed => {}
            }
        }
        self.proving.submit_batch(round, jobs);
        self.process_ready(round, &mut submissions);
        // This round's commitments become observable next round.
        for (id, commitment) in std::mem::take(&mut self.observed_buffer) {
            self.observed.entry(id).or_default().push(commitment);
        }
        for (sender, msg) in submissions {
            self.submit_tx(sender, msg);
        }
    }

    /// Releases every proof job whose modeled latency has elapsed and
    /// turns its output into agent bookkeeping plus mempool submissions.
    /// Outputs whose session or HIT was overtaken by a deadline backstop
    /// are discarded as stale.
    fn process_ready(&mut self, round: u64, submissions: &mut Vec<(Address, RegistryMessage)>) {
        for (key, output) in self.proving.drain_ready(round) {
            let id: HitId = key.instance;
            match output {
                JobOutput::Commit { wi, artifacts } => {
                    let w = &mut self.workers[wi];
                    let Some(session) = w.sessions.get_mut(&id) else {
                        // Commit window closed / HIT settled before the
                        // proof landed; the slot was already reclaimed.
                        self.proving.stats_mut().stale += 1;
                        continue;
                    };
                    let msg = session.install_commit(artifacts);
                    if let HitMessage::Commit { commitment } = &msg {
                        self.observed_buffer.push((id, *commitment));
                    }
                    submissions.push((w.addr, RegistryMessage::Hit { id, msg }));
                }
                JobOutput::Reveal { wi, msg } => {
                    if self.settled_hits.contains(&id) {
                        self.proving.stats_mut().stale += 1;
                        continue;
                    }
                    if let Some(msg) = msg {
                        submissions.push((self.workers[wi].addr, RegistryMessage::Hit { id, msg }));
                    }
                }
                JobOutput::Verdicts {
                    agent,
                    verdicts,
                    cartel,
                } => {
                    if self.settled_hits.contains(&id) {
                        self.proving.stats_mut().stale += 1;
                        continue;
                    }
                    let a = &mut self.requesters[agent];
                    for (worker, verdict) in verdicts {
                        match verdict {
                            Verdict::Accept { .. } => a.collected += 1,
                            Verdict::RejectOutOfRange { msg }
                            | Verdict::RejectLowQuality { msg, .. } => {
                                a.reject_targets.push(worker);
                                if cartel {
                                    a.pending_rejects.push(msg);
                                } else {
                                    submissions.push((a.addr, RegistryMessage::Hit { id, msg }));
                                }
                            }
                        }
                    }
                    if cartel {
                        // The withhold decision lands with the verdicts:
                        // only now is the rejectable count known.
                        let rejectable = a.pending_rejects.len();
                        if let Some(e) = &mut self.econ {
                            if e.withholds_golden(&a.addr, rejectable) {
                                a.golden_withheld = true;
                                a.golden_sent = true;
                                a.verdicts_sent = true;
                            }
                        }
                    }
                    a.verdicts_landed = true;
                }
                JobOutput::Direct { sender, msg } => {
                    submissions.push((sender, RegistryMessage::Hit { id, msg }));
                }
            }
        }
    }

    /// A zero-cost control job: carries an already-built message through
    /// the queue so its mempool position is decided by the same
    /// `(ready_tick, seq)` order as every proof.
    fn control_job(
        sender: Address,
        id: HitId,
        msg: HitMessage,
        jobs: &mut Vec<ProofJob<JobOutput>>,
    ) {
        jobs.push(ProofJob {
            key: JobKey {
                agent: sender,
                instance: id,
                phase: ProofPhase::Control,
            },
            cost: 0,
            run: Box::new(move |_rng: &mut StdRng| JobOutput::Direct { sender, msg }),
        });
    }

    /// Commit phase: eligible workers race for slots; the requester
    /// cancels an unfillable task after its timeout. With the econ layer
    /// on, candidates come reputation-ordered (`ranked`), departed
    /// workers sit out, the reputation gate and reservation wages filter
    /// the rest, and sybil policies pick each session's behaviour.
    fn drive_commit(
        &mut self,
        snap: &HitSnapshot,
        round: u64,
        ranked: Option<&[usize]>,
        jobs: &mut Vec<ProofJob<JobOutput>>,
    ) {
        let agent = &mut self.requesters[snap.agent];
        if let Some(deadline) = snap.commit_deadline {
            if round >= deadline && snap.committed.len() < snap.k && !agent.cancel_sent {
                agent.cancel_sent = true;
                Self::control_job(agent.addr, snap.id, HitMessage::Cancel, jobs);
                return;
            }
        }
        let target = snap.k + self.config.overbook;
        let joined = self.joined.entry(snap.id).or_default();
        if joined.len() >= target {
            return;
        }
        let ek = agent.client.public_key();
        // Disjoint field borrows: the workload stays borrowed from
        // `requesters` while `workers` etc. are mutated below.
        let workload = &self.requesters[snap.agent].workload;
        let observed = self.observed.entry(snap.id).or_default();
        let reward = if snap.k > 0 {
            snap.budget / snap.k as u128
        } else {
            0
        };
        // Rotate the pool start per hit so load spreads deterministically
        // (reputation ordering, when enabled, replaces the rotation).
        let pool = self.workers.len();
        let start = (snap.id as usize).wrapping_mul(13) % pool;
        let candidates = ranked.map_or(pool, <[usize]>::len);
        for off in 0..candidates {
            if joined.len() >= target {
                break;
            }
            let wi = match ranked {
                Some(order) => order[off],
                None => (start + off) % pool,
            };
            if !self.workers[wi].active || joined.contains(&wi) {
                continue;
            }
            // O(1) capacity check: the counter is maintained on join and
            // in `harvest`, replacing a rescan of the session map against
            // the settled set for every candidate of every live HIT.
            if self.workers[wi].live_sessions >= self.config.worker_capacity {
                continue;
            }
            // Econ filters: reputation gate, reservation wage, and the
            // sybil policy's per-session behaviour choice.
            let mut policy_behavior = None;
            if let Some(e) = &mut self.econ {
                match e.join_decision(&self.workers[wi].addr, reward, round) {
                    JoinDecision::Join(b) => policy_behavior = b,
                    JoinDecision::Gated | JoinDecision::Declined => continue,
                }
            }
            let w = &mut self.workers[wi];
            let behavior = policy_behavior.unwrap_or_else(|| w.behavior.clone());
            // The copy decision happens at enqueue time, against
            // commitments observed in *prior* rounds.
            let copied = match &behavior {
                WorkerBehavior::CopyPaste => match observed.first() {
                    Some(c) => Some(*c),
                    None => continue, // a copier with nothing to copy yet
                },
                _ => None,
            };
            // The slot is claimed now — the session exists and counts
            // against capacity — while the answer draw / encryption /
            // commitment run as a proof job.
            joined.push(wi);
            w.sessions
                .insert(snap.id, Worker::new(w.addr, behavior.clone()));
            w.live_sessions += 1;
            let truth = workload.truth.clone();
            let range = workload.spec.range;
            let cache = Arc::clone(&self.cache);
            // Modeled cost: two group ops per encrypted item plus the
            // commitment itself.
            let cost = 2 * truth.0.len() as u64 + 2;
            jobs.push(ProofJob {
                key: JobKey {
                    agent: w.addr,
                    instance: snap.id,
                    phase: ProofPhase::Commit,
                },
                cost,
                run: Box::new(move |rng: &mut StdRng| JobOutput::Commit {
                    wi,
                    artifacts: Worker::prepare_commit(
                        &behavior,
                        &truth,
                        range,
                        &ek,
                        copied,
                        Some(&cache),
                        rng,
                    )
                    .expect("commit inputs decided at enqueue"),
                }),
            });
        }
    }

    /// Reveal phase: accepted sessions open their commitments. Opening
    /// a commitment is free (no proving), so reveal jobs carry cost 0
    /// and always release in the round they were enqueued.
    fn drive_reveal(&mut self, snap: &HitSnapshot, jobs: &mut Vec<ProofJob<JobOutput>>) {
        for wi in self.joined.get(&snap.id).cloned().unwrap_or_default() {
            let w = &mut self.workers[wi];
            // A departed worker never reveals: its commitment settles as
            // `⊥` and the escrowed share flows back to the requester.
            if !w.active {
                continue;
            }
            if !snap.committed.contains(&w.addr) || w.revealed.contains(&snap.id) {
                continue;
            }
            let Some(session) = w.sessions.get(&snap.id) else {
                continue;
            };
            w.revealed.push(snap.id);
            let behavior = session.behavior.clone();
            let cts = session.ciphertexts().cloned();
            let key = session.commit_key();
            jobs.push(ProofJob {
                key: JobKey {
                    agent: w.addr,
                    instance: snap.id,
                    phase: ProofPhase::Reveal,
                },
                cost: 0,
                run: Box::new(move |rng: &mut StdRng| JobOutput::Reveal {
                    wi,
                    msg: Worker::reveal_msg_with(&behavior, cts.as_ref(), key, rng),
                }),
            });
        }
    }

    /// Evaluate phase: the requester sequences golden → rejections →
    /// finalize, waiting for each stage to confirm on-chain (rushing
    /// adversaries can reorder within a round). Cartel requesters run
    /// [`MarketSim::drive_evaluate_cartel`] instead.
    fn drive_evaluate(
        &mut self,
        snap: &HitSnapshot,
        round: u64,
        jobs: &mut Vec<ProofJob<JobOutput>>,
    ) {
        let is_cartel = self
            .econ
            .as_ref()
            .is_some_and(|e| e.is_cartel(&self.requesters[snap.agent].addr));
        if is_cartel {
            self.drive_evaluate_cartel(snap, round, jobs);
            return;
        }
        let agent = &mut self.requesters[snap.agent];
        if !agent.golden_sent {
            agent.golden_sent = true;
            Self::control_job(agent.addr, snap.id, agent.client.golden_msg(), jobs);
        } else if !agent.verdicts_sent && snap.golden_open {
            agent.verdicts_sent = true;
            Self::evaluate_job(snap, agent.addr, agent.client.evaluator(), false, jobs);
        } else if !agent.finalize_sent
            && agent.verdicts_sent
            && agent.verdicts_landed
            && agent
                .reject_targets
                .iter()
                .all(|w| snap.settled_workers.contains(w))
            && snap.evaluate_deadline.is_some_and(|d| round >= d)
        {
            agent.finalize_sent = true;
            Self::control_job(agent.addr, snap.id, HitMessage::Finalize, jobs);
        }
    }

    /// Enqueues the per-HIT evaluation job: decrypting every revealed
    /// submission and proving each rejection. Cost scales with what is
    /// actually evaluated, so a slow (high-latency) evaluation delays
    /// the rejections — and through the `verdicts_landed` gate the
    /// finalize — into later blocks.
    fn evaluate_job(
        snap: &HitSnapshot,
        addr: Address,
        evaluator: dragoon_protocol::Evaluator,
        cartel: bool,
        jobs: &mut Vec<ProofJob<JobOutput>>,
    ) {
        let revealed = snap.revealed.clone();
        let cost = revealed
            .iter()
            .map(|(_, cts)| evaluator.evaluation_cost(cts))
            .sum();
        let agent = snap.agent;
        jobs.push(ProofJob {
            key: JobKey {
                agent: addr,
                instance: snap.id,
                phase: ProofPhase::Evaluate,
            },
            cost,
            run: Box::new(move |rng: &mut StdRng| {
                let verdicts = revealed
                    .iter()
                    .map(|(w, cts)| (*w, evaluator.evaluate(*w, cts, rng)))
                    .collect();
                JobOutput::Verdicts {
                    agent,
                    verdicts,
                    cartel,
                }
            }),
        });
    }

    /// The golden-withholding cartel's evaluate phase: every verdict is
    /// decided **off-chain first** (the requester holds the decryption
    /// key; nothing forces evaluation through the chain), and the gold
    /// standards open only when at least one rejection will land. A HIT
    /// whose workers all pass keeps its golds secret — reusable across
    /// the cartel's other HITs — and settles through the deadline
    /// backstop; a HIT with rejectable work opens the golds and claws
    /// back every rejected share.
    fn drive_evaluate_cartel(
        &mut self,
        snap: &HitSnapshot,
        round: u64,
        jobs: &mut Vec<ProofJob<JobOutput>>,
    ) {
        let agent = &mut self.requesters[snap.agent];
        if !agent.verdicts_ready {
            agent.verdicts_ready = true;
            // The off-chain evaluation runs as a proof job; the withhold
            // decision is made when its verdicts land (`process_ready`).
            Self::evaluate_job(snap, agent.addr, agent.client.evaluator(), true, jobs);
        }
        if !agent.verdicts_landed {
            // Verdicts still proving — nothing further to sequence yet.
            return;
        }
        if agent.golden_withheld {
            // Nothing rejectable: settle through the deadline backstop
            // (the explicit finalize just lands it a round earlier).
            if !agent.finalize_sent && snap.evaluate_deadline.is_some_and(|d| round >= d) {
                agent.finalize_sent = true;
                Self::control_job(agent.addr, snap.id, HitMessage::Finalize, jobs);
            }
            return;
        }
        if !agent.golden_sent {
            agent.golden_sent = true;
            Self::control_job(agent.addr, snap.id, agent.client.golden_msg(), jobs);
        } else if !agent.verdicts_sent && snap.golden_open {
            agent.verdicts_sent = true;
            for msg in std::mem::take(&mut agent.pending_rejects) {
                Self::control_job(agent.addr, snap.id, msg, jobs);
            }
        } else if !agent.finalize_sent
            && agent.verdicts_sent
            && agent
                .reject_targets
                .iter()
                .all(|w| snap.settled_workers.contains(w))
            && snap.evaluate_deadline.is_some_and(|d| round >= d)
        {
            agent.finalize_sent = true;
            Self::control_job(agent.addr, snap.id, HitMessage::Finalize, jobs);
        }
    }

    /// Post-block bookkeeping: map fresh `Created` events to agents,
    /// record settlements and payment flows, accumulate block stats.
    fn harvest(&mut self) {
        let round = self.chain.round();
        let events = self.chain.events();
        let mut commit_closed: Vec<HitId> = Vec::new();
        let mut settled_now: Vec<HitId> = Vec::new();
        let mut cancelled_now = 0usize;
        for (at, event) in &events[self.events_seen..] {
            match event {
                RegistryEvent::Created { id, requester, .. } => {
                    let agent = self.agent_by_addr[requester];
                    self.requesters[agent].published_block = Some(*at);
                    self.agent_of_hit.insert(*id, agent);
                }
                RegistryEvent::Hit { id, event } => match event {
                    HitEvent::CommitClosed => commit_closed.push(*id),
                    HitEvent::Paid { amount, .. } => {
                        self.rewards_paid += amount;
                        self.workers_paid += 1;
                    }
                    HitEvent::Refunded { requester, amount } => {
                        self.refunds += amount;
                        if let Some(e) = &mut self.econ {
                            e.note_refund(requester, *amount);
                        }
                    }
                    HitEvent::Cancelled { refunded } => {
                        self.refunds += refunded;
                        cancelled_now += 1;
                        self.cancelled_hits.insert(*id);
                        if self.settled_hits.insert(*id) {
                            settled_now.push(*id);
                        }
                        self.settled_block.entry(*id).or_insert(*at);
                    }
                    HitEvent::Closed => {
                        if self.settled_hits.insert(*id) {
                            settled_now.push(*id);
                        }
                        self.settled_block.entry(*id).or_insert(*at);
                    }
                    _ => {}
                },
            }
        }
        self.events_seen = events.len();
        // A closed commit phase frees the losers of overbooked races:
        // their commit reverted (TaskFull), so their session holds no
        // slot and must not count against worker capacity.
        for &id in &commit_closed {
            let committed: Vec<Address> = self
                .chain
                .contract()
                .hit(id)
                .map(|h| h.committed_workers().to_vec())
                .unwrap_or_default();
            for &wi in self.joined.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
                if !committed.contains(&self.workers[wi].addr)
                    && self.workers[wi].sessions.remove(&id).is_some()
                {
                    self.workers[wi].live_sessions -= 1;
                }
            }
        }
        // A settled (closed or cancelled) HIT releases every session slot
        // its workers held — this is the decrement that keeps the O(1)
        // capacity counters exact.
        for &id in &settled_now {
            for &wi in self.joined.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
                if self.workers[wi].sessions.remove(&id).is_some() {
                    self.workers[wi].live_sessions -= 1;
                }
            }
        }
        // Econ block boundary: settlement receipts feed the reputation
        // book and per-class payout metrics, the fill/latency outcomes
        // feed the pricing controller, and the churn process reshapes
        // the worker pool. Everything derives from committed chain
        // state, so the layer is identical at every thread count.
        if let Some(e) = &mut self.econ {
            let mut latencies: Vec<u64> = Vec::new();
            for &id in &settled_now {
                let agent = self.agent_of_hit[&id];
                let requester = self.requesters[agent].addr;
                if let Some(hit) = self.chain.contract().hit(id) {
                    e.on_settled_hit(&requester, hit.settlement_receipts(), round);
                }
                if !self.cancelled_hits.contains(&id) {
                    if let (Some(&settled), Some(published)) = (
                        self.settled_block.get(&id),
                        self.requesters[agent].published_block,
                    ) {
                        // A HIT cannot settle before it was published;
                        // a violation means the block clock went
                        // backwards. Count it instead of clamping the
                        // latency to 0, which would silently skew the
                        // pricing controller's input.
                        debug_assert!(
                            settled >= published,
                            "hit #{id} settled at block {settled} before publish at {published}"
                        );
                        if let Some(latency) = settled.checked_sub(published) {
                            latencies.push(latency);
                        } else {
                            self.latency_violations += 1;
                            dragoon_trace::counter_inc("engine_latency_violations_total");
                        }
                    }
                }
            }
            let observation = self
                .chain
                .last_observation()
                .expect("advance_round produced a block");
            e.observe_block(&observation, commit_closed.len(), cancelled_now, &latencies);
            // Churn: departures first (against the current active list,
            // positions applied with removal), then arrivals extending
            // the pool with the next derived addresses.
            let mut actives: Vec<usize> = self
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.active)
                .map(|(i, _)| i)
                .collect();
            let decision = e.churn_step(actives.len());
            for pos in decision.departs {
                let wi = actives.remove(pos);
                self.workers[wi].active = false;
            }
            let base_reward = self.config.budget / self.config.k.max(1) as u128;
            for _ in 0..decision.joins {
                let index = self.next_worker_index;
                self.next_worker_index += 1;
                let addr = Address::from_seed(0x3031_0000 + index);
                e.register_worker(index as usize, addr, base_reward);
                self.workers.push(WorkerAgent::new(
                    addr,
                    behavior_for(&self.config.behavior_mix, index),
                ));
            }
        }
        let observation = self
            .chain
            .last_observation()
            .expect("advance_round produced a block");
        self.block_stats.push(BlockStat {
            height: round,
            txs: observation.txs,
            reverted: observation.reverted,
            gas_used: observation.gas_used,
        });
    }

    /// Assembles the final report.
    fn build_report(&self) -> MarketReport {
        let registry = self.chain.contract();
        let mut outcomes = Vec::new();
        let mut workers_rejected = 0;
        for (&id, &agent) in &self.agent_of_hit {
            let hit = registry.hit(id).expect("created instance");
            let (mut paid, mut rejected, mut no_reveal) = (0, 0, 0);
            for w in hit.committed_workers() {
                match hit.settlement(w) {
                    Some(Settlement::Paid) => paid += 1,
                    Some(Settlement::Rejected(RejectReason::NoReveal)) => no_reveal += 1,
                    Some(Settlement::Rejected(_)) => rejected += 1,
                    None => {}
                }
            }
            workers_rejected += rejected;
            outcomes.push(HitOutcome {
                id,
                published_block: self.requesters[agent].published_block.unwrap_or(0),
                settled_block: self.settled_block.get(&id).copied(),
                cancelled: self.cancelled_hits.contains(&id),
                paid,
                rejected,
                no_reveal,
            });
        }
        let latencies: Vec<u64> = outcomes.iter().filter_map(HitOutcome::latency).collect();
        let latency_mean_blocks = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        };
        let nonempty: Vec<&BlockStat> = self.block_stats.iter().filter(|b| b.txs > 0).collect();
        let gas_per_block_mean = if nonempty.is_empty() {
            0.0
        } else {
            nonempty.iter().map(|b| b.gas_used).sum::<u64>() as f64 / nonempty.len() as f64
        };
        let hits_cancelled = self.cancelled_hits.len();
        let hits_settled = self.settled_hits.len() - hits_cancelled;
        // Cache counters as deltas from construction time, so a run on
        // a shared (prewarmed) cache reports its own hits and misses.
        let mut proving = *self.proving.stats();
        let cache_now = self.cache.stats();
        proving.cache_hits = cache_now.hits - self.cache_base.hits;
        proving.cache_misses = cache_now.misses - self.cache_base.misses;
        MarketReport {
            seed: self.config.seed,
            settlement: self.config.settlement,
            blocks: self.chain.round(),
            hits_published: self.agent_of_hit.len(),
            hits_settled,
            hits_cancelled,
            hits_unfinished: self.agent_of_hit.len() - self.settled_hits.len(),
            total_gas: self.chain.total_gas(),
            gas_per_block_mean,
            gas_per_block_max: self
                .block_stats
                .iter()
                .map(|b| b.gas_used)
                .max()
                .unwrap_or(0),
            block_gas_limit: self.config.block_gas_limit,
            gas_utilization: self
                .config
                .block_gas_limit
                .map(|l| gas_per_block_mean / l as f64),
            latency_mean_blocks,
            latency_max_blocks: latencies.iter().copied().max().unwrap_or(0),
            answers_collected: self.requesters.iter().map(|a| a.collected).sum(),
            rewards_paid: self.rewards_paid,
            workers_paid: self.workers_paid,
            workers_rejected,
            refunds: self.refunds,
            reverted_txs: self.block_stats.iter().map(|b| b.reverted).sum(),
            latency_violations: self.latency_violations,
            batch: registry.batch_stats(),
            parallel: self.chain.parallel_stats(),
            econ: self.econ.as_ref().map(|e| e.report(self.chain.round())),
            net: self.net.as_ref().map(NetSim::report),
            proving,
            persist: self.store.as_ref().map(BlockStore::stats),
            outcomes,
            block_stats: self.block_stats.clone(),
        }
    }

    /// The chain, for post-run inspection in tests.
    pub fn chain(&self) -> &Chain<HitRegistry> {
        &self.chain
    }
}

/// Convenience: build and run in one call.
pub fn run_market(config: MarketConfig) -> MarketReport {
    MarketSim::new(config).run()
}
