//! The block-driven marketplace engine.
//!
//! [`MarketSim`] multiplexes hundreds of Π_hit instances over one
//! simulated chain hosting a [`HitRegistry`]. Each block it:
//!
//! 1. publishes up to `spawn_per_block` new HITs (factory `Create`
//!    transactions, budget frozen into per-instance escrow),
//! 2. snapshots every live instance's phase and lets the agent pools
//!    react — workers race for commit slots (optionally overbooked so
//!    `TaskFull` contention actually happens), accepted workers reveal,
//!    requesters open gold standards, challenge bad submissions and
//!    finalize,
//! 3. advances the chain one round under the configured mempool policy
//!    (honest FIFO, reverse, or a designated front-runner), and
//! 4. harvests events into per-block and per-HIT metrics.
//!
//! Everything — key generation, workloads, worker noise, scheduling —
//! derives from the single `MarketConfig::seed`, so a run is exactly
//! reproducible, and a `PerProof` vs `Batched` pair of runs with the
//! same seed settles every worker identically (asserted by the
//! `tests/marketplace.rs` equivalence test).

use crate::agents::{RequesterAgent, WorkerAgent};
use crate::config::{MarketConfig, MarketPolicy};
use crate::metrics::{BlockStat, HitOutcome, MarketReport};
use dragoon_chain::{
    resolve_threads, Chain, FifoPolicy, FrontRunPolicy, GasSchedule, ReorderPolicy, ReversePolicy,
    TxStatus,
};
use dragoon_contract::{
    HitEvent, HitId, HitMessage, HitRegistry, Phase, RegistryEvent, RegistryMessage, RejectReason,
    Settlement, REGISTRY_CODE_LEN,
};
use dragoon_core::task::EncryptedAnswer;
use dragoon_core::workload::generate_workload;
use dragoon_crypto::commitment::Commitment;
use dragoon_crypto::elgamal::PlaintextRange;
use dragoon_ledger::Address;
use dragoon_protocol::{ContentStore, Requester, Verdict, Worker};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// A read-only snapshot of one live instance, taken between blocks so
/// agent reactions don't fight the chain borrow.
struct HitSnapshot {
    id: HitId,
    agent: usize,
    phase: Phase,
    committed: Vec<Address>,
    k: usize,
    commit_deadline: Option<u64>,
    revealed: Vec<(Address, EncryptedAnswer)>,
    golden_open: bool,
    evaluate_deadline: Option<u64>,
    settled_workers: BTreeSet<Address>,
}

/// The marketplace engine. Build with [`MarketSim::new`], run with
/// [`MarketSim::run`].
pub struct MarketSim {
    config: MarketConfig,
    rng: StdRng,
    chain: Chain<HitRegistry>,
    requesters: Vec<RequesterAgent>,
    workers: Vec<WorkerAgent>,
    next_publish: usize,
    /// Requester address → agent index (addresses are fixed at setup).
    agent_by_addr: BTreeMap<Address, usize>,
    agent_of_hit: BTreeMap<HitId, usize>,
    /// Worker indices that joined (or tried to join) each hit.
    joined: BTreeMap<HitId, Vec<usize>>,
    /// Commitments visible for each hit (mempool observation, for the
    /// copy-paste behaviour).
    observed: BTreeMap<HitId, Vec<Commitment>>,
    settled_hits: BTreeSet<HitId>,
    settled_block: BTreeMap<HitId, u64>,
    cancelled_hits: BTreeSet<HitId>,
    block_stats: Vec<BlockStat>,
    events_seen: usize,
    rewards_paid: u128,
    workers_paid: usize,
    refunds: u128,
}

impl MarketSim {
    /// Sets up the chain, registry and agent pools from a config.
    pub fn new(config: MarketConfig) -> Self {
        assert!(config.hits > 0, "a market needs at least one HIT");
        assert!(config.workers > 0, "a market needs workers");
        let mut rng = StdRng::seed_from_u64(config.seed);
        // One resolved thread budget drives both the parallel block
        // executor and block-boundary settlement verification.
        let threads = resolve_threads(config.exec_threads);
        let mut chain = Chain::deploy(
            HitRegistry::new(config.settlement).with_verify_threads(threads),
            REGISTRY_CODE_LEN,
            GasSchedule::istanbul(),
        )
        .with_exec_threads(threads);
        if let Some(limit) = config.block_gas_limit {
            chain = chain.with_block_gas_limit(limit);
        }
        if config.clone_checkpointing {
            chain = chain.with_clone_checkpointing();
        }
        let mut store = ContentStore::new();
        let mut requesters = Vec::with_capacity(config.hits);
        for i in 0..config.hits as u64 {
            let addr = Address::from_seed(0xd1a6_0000 + i);
            chain.ledger.mint(addr, config.budget);
            let workload = generate_workload(
                config.questions,
                config.golds,
                config.k,
                config.theta,
                PlaintextRange::binary(),
                config.budget,
                &mut rng,
            );
            let client = Requester::new(addr, &workload, &mut store, &mut rng);
            requesters.push(RequesterAgent::new(addr, client, workload));
        }
        let total_weight: u32 = config.behavior_mix.iter().map(|(_, w)| *w).sum();
        assert!(total_weight > 0, "behaviour mix must have positive weight");
        let workers = (0..config.workers as u64)
            .map(|i| {
                let addr = Address::from_seed(0x3031_0000 + i);
                // Deterministic weighted assignment by pool position.
                let mut ticket = (i as u32 * 7919) % total_weight;
                let behavior = config
                    .behavior_mix
                    .iter()
                    .find_map(|(b, w)| {
                        if ticket < *w {
                            Some(b.clone())
                        } else {
                            ticket -= w;
                            None
                        }
                    })
                    .expect("ticket < total_weight");
                WorkerAgent::new(addr, behavior)
            })
            .collect();
        let agent_by_addr = requesters
            .iter()
            .enumerate()
            .map(|(i, a)| (a.addr, i))
            .collect();
        Self {
            config,
            rng,
            chain,
            requesters,
            workers,
            next_publish: 0,
            agent_by_addr,
            agent_of_hit: BTreeMap::new(),
            joined: BTreeMap::new(),
            observed: BTreeMap::new(),
            settled_hits: BTreeSet::new(),
            settled_block: BTreeMap::new(),
            cancelled_hits: BTreeSet::new(),
            block_stats: Vec::new(),
            events_seen: 0,
            rewards_paid: 0,
            workers_paid: 0,
            refunds: 0,
        }
    }

    /// Runs the market to completion (every HIT settled) or to
    /// `max_blocks`, returning the report.
    pub fn run(mut self) -> MarketReport {
        let mut fifo = FifoPolicy;
        let mut reverse = ReversePolicy;
        let mut front_run = FrontRunPolicy::new(self.workers[0].addr);
        loop {
            let done = self.next_publish >= self.config.hits
                && self.settled_hits.len() >= self.agent_of_hit.len()
                && self.agent_of_hit.len() >= self.config.hits;
            if done || self.chain.round() >= self.config.max_blocks {
                break;
            }
            self.publish_step();
            self.agent_step();
            let policy: &mut dyn ReorderPolicy<RegistryMessage> = match self.config.policy {
                MarketPolicy::Fifo => &mut fifo,
                MarketPolicy::Reverse => &mut reverse,
                MarketPolicy::FrontRun => &mut front_run,
            };
            // Optimistic parallel execution over disjoint HIT instances;
            // delegates to the serial path at one thread or under the
            // clone-checkpoint baseline. Reports are identical either
            // way (tests/parallel_equivalence.rs).
            self.chain.advance_round_parallel(policy);
            self.harvest();
        }
        self.report()
    }

    /// Submits this block's `Create` transactions.
    fn publish_step(&mut self) {
        let mut spawned = 0;
        while self.next_publish < self.config.hits && spawned < self.config.spawn_per_block {
            let agent = &self.requesters[self.next_publish];
            let HitMessage::Publish(params) = agent.client.publish_msg() else {
                unreachable!("publish_msg returns Publish");
            };
            self.chain.submit(
                agent.addr,
                RegistryMessage::Create {
                    windows: self.config.windows,
                    params,
                },
            );
            self.next_publish += 1;
            spawned += 1;
        }
    }

    /// Snapshots every live instance.
    fn snapshots(&self) -> Vec<HitSnapshot> {
        let registry = self.chain.contract();
        let mut out = Vec::new();
        for (&id, &agent) in &self.agent_of_hit {
            if self.settled_hits.contains(&id) {
                continue;
            }
            let Some(hit) = registry.hit(id) else {
                continue;
            };
            if hit.is_settled() {
                continue;
            }
            let committed = hit.committed_workers().to_vec();
            // Revealed ciphertexts are only consumed by the one block in
            // which the requester sends its verdicts — skip the clones
            // everywhere else (they dominate snapshot cost otherwise).
            let revealed = if hit.phase() == Phase::Evaluate
                && hit.golden().is_some()
                && !self.requesters[agent].verdicts_sent
            {
                committed
                    .iter()
                    .filter_map(|w| hit.revealed(w).map(|cts| (*w, cts.clone())))
                    .collect()
            } else {
                Vec::new()
            };
            let settled_workers = committed
                .iter()
                .filter(|w| hit.settlement(w).is_some())
                .copied()
                .collect();
            out.push(HitSnapshot {
                id,
                agent,
                phase: hit.phase(),
                committed,
                k: hit.params().map_or(0, |p| p.k),
                commit_deadline: hit.commit_deadline(),
                revealed,
                golden_open: hit.golden().is_some(),
                evaluate_deadline: hit.evaluate_deadline(),
                settled_workers,
            });
        }
        out
    }

    /// Lets workers and requesters react to every live instance.
    fn agent_step(&mut self) {
        let round = self.chain.round();
        let snapshots = self.snapshots();
        let mut submissions: Vec<(Address, RegistryMessage)> = Vec::new();
        for snap in &snapshots {
            match snap.phase {
                Phase::Commit => self.drive_commit(snap, round, &mut submissions),
                Phase::Reveal => self.drive_reveal(snap, &mut submissions),
                Phase::Evaluate => self.drive_evaluate(snap, round, &mut submissions),
                Phase::Setup | Phase::Closed => {}
            }
        }
        for (sender, msg) in submissions {
            self.chain.submit(sender, msg);
        }
    }

    /// Commit phase: eligible workers race for slots; the requester
    /// cancels an unfillable task after its timeout.
    fn drive_commit(
        &mut self,
        snap: &HitSnapshot,
        round: u64,
        submissions: &mut Vec<(Address, RegistryMessage)>,
    ) {
        let agent = &mut self.requesters[snap.agent];
        if let Some(deadline) = snap.commit_deadline {
            if round >= deadline && snap.committed.len() < snap.k && !agent.cancel_sent {
                agent.cancel_sent = true;
                submissions.push((
                    agent.addr,
                    RegistryMessage::Hit {
                        id: snap.id,
                        msg: HitMessage::Cancel,
                    },
                ));
                return;
            }
        }
        let target = snap.k + self.config.overbook;
        let joined = self.joined.entry(snap.id).or_default();
        if joined.len() >= target {
            return;
        }
        let ek = agent.client.public_key();
        // Disjoint field borrows: the workload stays borrowed from
        // `requesters` while `workers`, `rng` etc. are mutated below.
        let workload = &self.requesters[snap.agent].workload;
        let observed = self.observed.entry(snap.id).or_default();
        // Rotate the pool start per hit so load spreads deterministically.
        let start = (snap.id as usize).wrapping_mul(13) % self.workers.len();
        for off in 0..self.workers.len() {
            if joined.len() >= target {
                break;
            }
            let wi = (start + off) % self.workers.len();
            if joined.contains(&wi) {
                continue;
            }
            // O(1) capacity check: the counter is maintained on join and
            // in `harvest`, replacing a rescan of the session map against
            // the settled set for every candidate of every live HIT.
            if self.workers[wi].live_sessions >= self.config.worker_capacity {
                continue;
            }
            let w = &mut self.workers[wi];
            let mut session = Worker::new(w.addr, w.behavior.clone());
            let Some(msg) = session.commit_msg(workload, &ek, observed, &mut self.rng) else {
                continue; // e.g. a copier with nothing to copy yet
            };
            if let HitMessage::Commit { commitment } = &msg {
                observed.push(*commitment);
            }
            joined.push(wi);
            w.sessions.insert(snap.id, session);
            w.live_sessions += 1;
            submissions.push((w.addr, RegistryMessage::Hit { id: snap.id, msg }));
        }
    }

    /// Reveal phase: accepted sessions open their commitments.
    fn drive_reveal(
        &mut self,
        snap: &HitSnapshot,
        submissions: &mut Vec<(Address, RegistryMessage)>,
    ) {
        for wi in self.joined.get(&snap.id).cloned().unwrap_or_default() {
            let w = &mut self.workers[wi];
            if !snap.committed.contains(&w.addr) || w.revealed.contains(&snap.id) {
                continue;
            }
            let Some(session) = w.sessions.get(&snap.id) else {
                continue;
            };
            w.revealed.push(snap.id);
            if let Some(msg) = session.reveal_msg(&mut self.rng) {
                submissions.push((w.addr, RegistryMessage::Hit { id: snap.id, msg }));
            }
        }
    }

    /// Evaluate phase: the requester sequences golden → rejections →
    /// finalize, waiting for each stage to confirm on-chain (rushing
    /// adversaries can reorder within a round).
    fn drive_evaluate(
        &mut self,
        snap: &HitSnapshot,
        round: u64,
        submissions: &mut Vec<(Address, RegistryMessage)>,
    ) {
        let agent = &mut self.requesters[snap.agent];
        if !agent.golden_sent {
            agent.golden_sent = true;
            submissions.push((
                agent.addr,
                RegistryMessage::Hit {
                    id: snap.id,
                    msg: agent.client.golden_msg(),
                },
            ));
        } else if !agent.verdicts_sent && snap.golden_open {
            agent.verdicts_sent = true;
            for (worker, cts) in &snap.revealed {
                match agent.client.evaluate(*worker, cts, &mut self.rng) {
                    Verdict::Accept { .. } => agent.collected += 1,
                    Verdict::RejectOutOfRange { msg } | Verdict::RejectLowQuality { msg, .. } => {
                        agent.reject_targets.push(*worker);
                        submissions.push((agent.addr, RegistryMessage::Hit { id: snap.id, msg }));
                    }
                }
            }
        } else if !agent.finalize_sent
            && agent.verdicts_sent
            && agent
                .reject_targets
                .iter()
                .all(|w| snap.settled_workers.contains(w))
            && snap.evaluate_deadline.is_some_and(|d| round >= d)
        {
            agent.finalize_sent = true;
            submissions.push((
                agent.addr,
                RegistryMessage::Hit {
                    id: snap.id,
                    msg: HitMessage::Finalize,
                },
            ));
        }
    }

    /// Post-block bookkeeping: map fresh `Created` events to agents,
    /// record settlements and payment flows, accumulate block stats.
    fn harvest(&mut self) {
        let round = self.chain.round();
        let events = self.chain.events();
        let mut commit_closed: Vec<HitId> = Vec::new();
        let mut settled_now: Vec<HitId> = Vec::new();
        for (at, event) in &events[self.events_seen..] {
            match event {
                RegistryEvent::Created { id, requester, .. } => {
                    let agent = self.agent_by_addr[requester];
                    self.requesters[agent].published_block = Some(*at);
                    self.agent_of_hit.insert(*id, agent);
                }
                RegistryEvent::Hit { id, event } => match event {
                    HitEvent::CommitClosed => commit_closed.push(*id),
                    HitEvent::Paid { amount, .. } => {
                        self.rewards_paid += amount;
                        self.workers_paid += 1;
                    }
                    HitEvent::Refunded { amount, .. } => {
                        self.refunds += amount;
                    }
                    HitEvent::Cancelled { refunded } => {
                        self.refunds += refunded;
                        self.cancelled_hits.insert(*id);
                        if self.settled_hits.insert(*id) {
                            settled_now.push(*id);
                        }
                        self.settled_block.entry(*id).or_insert(*at);
                    }
                    HitEvent::Closed => {
                        if self.settled_hits.insert(*id) {
                            settled_now.push(*id);
                        }
                        self.settled_block.entry(*id).or_insert(*at);
                    }
                    _ => {}
                },
            }
        }
        self.events_seen = events.len();
        // A closed commit phase frees the losers of overbooked races:
        // their commit reverted (TaskFull), so their session holds no
        // slot and must not count against worker capacity.
        for id in commit_closed {
            let committed: Vec<Address> = self
                .chain
                .contract()
                .hit(id)
                .map(|h| h.committed_workers().to_vec())
                .unwrap_or_default();
            for &wi in self.joined.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
                if !committed.contains(&self.workers[wi].addr)
                    && self.workers[wi].sessions.remove(&id).is_some()
                {
                    self.workers[wi].live_sessions -= 1;
                }
            }
        }
        // A settled (closed or cancelled) HIT releases every session slot
        // its workers held — this is the decrement that keeps the O(1)
        // capacity counters exact.
        for id in settled_now {
            for &wi in self.joined.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
                if self.workers[wi].sessions.remove(&id).is_some() {
                    self.workers[wi].live_sessions -= 1;
                }
            }
        }
        let block = self
            .chain
            .blocks()
            .last()
            .expect("advance_round produced a block");
        self.block_stats.push(BlockStat {
            height: round,
            txs: block.receipts.len(),
            reverted: block
                .receipts
                .iter()
                .filter(|r| matches!(r.status, TxStatus::Reverted(_)))
                .count(),
            gas_used: block.receipts.iter().map(|r| r.gas_used).sum(),
        });
    }

    /// Assembles the final report.
    fn report(self) -> MarketReport {
        let registry = self.chain.contract();
        let mut outcomes = Vec::new();
        let mut workers_rejected = 0;
        for (&id, &agent) in &self.agent_of_hit {
            let hit = registry.hit(id).expect("created instance");
            let (mut paid, mut rejected, mut no_reveal) = (0, 0, 0);
            for w in hit.committed_workers() {
                match hit.settlement(w) {
                    Some(Settlement::Paid) => paid += 1,
                    Some(Settlement::Rejected(RejectReason::NoReveal)) => no_reveal += 1,
                    Some(Settlement::Rejected(_)) => rejected += 1,
                    None => {}
                }
            }
            workers_rejected += rejected;
            outcomes.push(HitOutcome {
                id,
                published_block: self.requesters[agent].published_block.unwrap_or(0),
                settled_block: self.settled_block.get(&id).copied(),
                cancelled: self.cancelled_hits.contains(&id),
                paid,
                rejected,
                no_reveal,
            });
        }
        let latencies: Vec<u64> = outcomes.iter().filter_map(HitOutcome::latency).collect();
        let latency_mean_blocks = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        };
        let nonempty: Vec<&BlockStat> = self.block_stats.iter().filter(|b| b.txs > 0).collect();
        let gas_per_block_mean = if nonempty.is_empty() {
            0.0
        } else {
            nonempty.iter().map(|b| b.gas_used).sum::<u64>() as f64 / nonempty.len() as f64
        };
        let hits_cancelled = self.cancelled_hits.len();
        let hits_settled = self.settled_hits.len() - hits_cancelled;
        MarketReport {
            seed: self.config.seed,
            settlement: self.config.settlement,
            blocks: self.chain.round(),
            hits_published: self.agent_of_hit.len(),
            hits_settled,
            hits_cancelled,
            hits_unfinished: self.agent_of_hit.len() - self.settled_hits.len(),
            total_gas: self.chain.total_gas(),
            gas_per_block_mean,
            gas_per_block_max: self
                .block_stats
                .iter()
                .map(|b| b.gas_used)
                .max()
                .unwrap_or(0),
            block_gas_limit: self.config.block_gas_limit,
            gas_utilization: self
                .config
                .block_gas_limit
                .map(|l| gas_per_block_mean / l as f64),
            latency_mean_blocks,
            latency_max_blocks: latencies.iter().copied().max().unwrap_or(0),
            answers_collected: self.requesters.iter().map(|a| a.collected).sum(),
            rewards_paid: self.rewards_paid,
            workers_paid: self.workers_paid,
            workers_rejected,
            refunds: self.refunds,
            reverted_txs: self.block_stats.iter().map(|b| b.reverted).sum(),
            batch: registry.batch_stats(),
            parallel: self.chain.parallel_stats(),
            outcomes,
            block_stats: self.block_stats,
        }
    }

    /// The chain, for post-run inspection in tests.
    pub fn chain(&self) -> &Chain<HitRegistry> {
        &self.chain
    }
}

/// Convenience: build and run in one call.
pub fn run_market(config: MarketConfig) -> MarketReport {
    MarketSim::new(config).run()
}
