//! # dragoon-sim
//!
//! A concurrent multi-HIT marketplace engine over the Dragoon stack:
//! hundreds of Π_hit instances racing through one gas-capped simulated
//! chain, driven block by block.
//!
//! * [`config::MarketConfig`] — the scenario: spawn curve, task shape,
//!   worker-pool size and behaviour mix, phase windows, block gas limit,
//!   mempool policy and settlement mode.
//! * [`engine::MarketSim`] — the block-driven event loop multiplexing
//!   agent pools over a [`dragoon_contract::HitRegistry`].
//! * [`metrics::MarketReport`] — gas utilization, settlement latency,
//!   reward flows, dropped/expired tasks and batched-verification
//!   counters, with JSON output for the perf trajectory.
//! * [`seed`] — seed injection from `DRAGOON_SEED` / CLI so every run of
//!   every binary is reproducible.
//!
//! ```
//! use dragoon_sim::{run_market, MarketConfig};
//! let report = run_market(MarketConfig { hits: 10, seed: 1, ..MarketConfig::default() });
//! assert_eq!(report.hits_published, 10);
//! ```

pub mod agents;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod seed;

pub use config::{BehaviorMix, MarketConfig, MarketPolicy, PersistConfig};
pub use dragoon_protocol::{ProvingConfig, ProvingStats};
pub use engine::{recover_market_chain, run_market, MarketSim};
pub use metrics::{BlockStat, HitOutcome, MarketReport};
pub use seed::{seed_from_args_or, seed_from_env_or};
