//! Market-level metrics: per-block stats, per-HIT outcomes and the
//! aggregate [`MarketReport`] with hand-rolled JSON output (the compat
//! serde is derive-only, so structured output is written directly).

use dragoon_chain::{Gas, ParallelStats, PersistStats};
use dragoon_contract::{BatchStats, HitId, SettlementMode};
use dragoon_econ::EconReport;
use dragoon_net::NetReport;
use dragoon_protocol::ProvingStats;

/// One produced block's footprint.
#[derive(Clone, Copy, Debug)]
pub struct BlockStat {
    /// Block height (round number).
    pub height: u64,
    /// Executed transactions (including reverted).
    pub txs: usize,
    /// Reverted transactions.
    pub reverted: usize,
    /// Gas consumed by the block.
    pub gas_used: Gas,
}

/// One HIT's lifecycle summary.
#[derive(Clone, Debug)]
pub struct HitOutcome {
    /// Registry id.
    pub id: HitId,
    /// Block in which the instance was created/published.
    pub published_block: u64,
    /// Block in which it settled (closed or cancelled), if it did.
    pub settled_block: Option<u64>,
    /// Whether it was cancelled unfilled (the "dropped/expired" bucket).
    pub cancelled: bool,
    /// Workers paid.
    pub paid: usize,
    /// Workers rejected with proofs (low quality / out of range).
    pub rejected: usize,
    /// Workers recorded as `⊥` (committed, never revealed).
    pub no_reveal: usize,
}

impl HitOutcome {
    /// Settlement latency in blocks, if settled.
    pub fn latency(&self) -> Option<u64> {
        self.settled_block.map(|s| s - self.published_block)
    }
}

/// The serializable outcome of a marketplace run.
#[derive(Clone, Debug)]
pub struct MarketReport {
    /// The run's master seed.
    pub seed: u64,
    /// Settlement mode the market ran under.
    pub settlement: SettlementMode,
    /// Blocks produced.
    pub blocks: u64,
    /// HITs published.
    pub hits_published: usize,
    /// HITs settled with payments (closed).
    pub hits_settled: usize,
    /// HITs cancelled unfilled (dropped/expired).
    pub hits_cancelled: usize,
    /// HITs still open when the run stopped.
    pub hits_unfinished: usize,
    /// Total gas across all transactions.
    pub total_gas: Gas,
    /// Mean gas per non-empty block.
    pub gas_per_block_mean: f64,
    /// Max gas in one block.
    pub gas_per_block_max: Gas,
    /// The gas cap in force.
    pub block_gas_limit: Option<Gas>,
    /// `gas_per_block_mean / limit` over non-empty blocks.
    pub gas_utilization: Option<f64>,
    /// Mean settlement latency (publish → settle) in blocks.
    pub latency_mean_blocks: f64,
    /// Max settlement latency in blocks.
    pub latency_max_blocks: u64,
    /// Answers requesters accepted (decrypted, quality ≥ Θ) — the
    /// marketplace's utility.
    pub answers_collected: usize,
    /// Total reward payments made to workers.
    pub rewards_paid: u128,
    /// Count of worker payments.
    pub workers_paid: usize,
    /// Workers rejected with proofs.
    pub workers_rejected: usize,
    /// Escrow refunded to requesters (leftovers + cancellations).
    pub refunds: u128,
    /// Reverted transactions over the whole run.
    pub reverted_txs: usize,
    /// Settle-before-publish clock violations. The settlement block of
    /// a HIT can never precede its publish block; debug builds assert
    /// this, release builds count offenders here (instead of silently
    /// clamping the latency to 0) so a broken clock is visible in the
    /// report. Always 0 on a healthy run.
    pub latency_violations: usize,
    /// Batched-settlement counters (all zero in per-proof mode).
    pub batch: BatchStats,
    /// Parallel-executor counters (groups, selective retries, fallbacks,
    /// barriers). Deliberately excluded from [`MarketReport::to_json`]:
    /// that JSON is the cross-thread-count equivalence witness, and these
    /// counters legitimately differ with the thread budget. Emit them via
    /// [`MarketReport::scheduler_json`] instead.
    pub parallel: ParallelStats,
    /// The econ layer's report (`None` when the layer is disabled).
    /// Everything in it derives deterministically from chain state, so
    /// it is identical across executor thread counts — emitted via
    /// [`MarketReport::econ_json`], kept out of [`MarketReport::to_json`]
    /// so pre-econ golden outputs stay stable.
    pub econ: Option<EconReport>,
    /// The network layer's report (`None` when the run was single-node).
    /// Derives from the canonical block feed and the seeded gossip
    /// layer, so it is identical across executor thread counts —
    /// emitted via [`MarketReport::net_json`], kept out of
    /// [`MarketReport::to_json`] so pre-net golden outputs stay stable.
    pub net: Option<NetReport>,
    /// The proving-service counters (job/queue/latency/cache). Every
    /// serialized field is thread-count independent (the service's
    /// per-job RNG streams and modeled latency don't see the pool
    /// width) — emitted via [`MarketReport::proving_json`], kept out of
    /// [`MarketReport::to_json`] so pre-proving golden outputs stay
    /// stable.
    pub proving: ProvingStats,
    /// The persistence-layer counters (`None` when the run kept no
    /// block store). Log and snapshot *cadence* counters are
    /// deterministic, but incremental-snapshot byte counts may differ
    /// across executor thread counts (the serial and parallel executors
    /// over-approximate the dirty working set differently) — emitted
    /// via [`MarketReport::persist_json`], kept out of
    /// [`MarketReport::to_json`] so that JSON stays the cross-thread
    /// equivalence witness.
    pub persist: Option<PersistStats>,
    /// Per-HIT outcomes, in id order.
    pub outcomes: Vec<HitOutcome>,
    /// Per-block footprints.
    pub block_stats: Vec<BlockStat>,
}

impl MarketReport {
    /// Compact single-object JSON (summary scalars only; per-HIT and
    /// per-block series are available on the struct).
    pub fn to_json(&self) -> String {
        let mode = match self.settlement {
            SettlementMode::PerProof => "per_proof",
            SettlementMode::Batched => "batched",
        };
        let mut s = String::with_capacity(512);
        s.push('{');
        push_kv(&mut s, "seed", &self.seed.to_string());
        push_kv(&mut s, "settlement", &format!("\"{mode}\""));
        push_kv(&mut s, "blocks", &self.blocks.to_string());
        push_kv(&mut s, "hits_published", &self.hits_published.to_string());
        push_kv(&mut s, "hits_settled", &self.hits_settled.to_string());
        push_kv(&mut s, "hits_cancelled", &self.hits_cancelled.to_string());
        push_kv(&mut s, "hits_unfinished", &self.hits_unfinished.to_string());
        push_kv(&mut s, "total_gas", &self.total_gas.to_string());
        push_kv(
            &mut s,
            "gas_per_block_mean",
            &format!("{:.1}", self.gas_per_block_mean),
        );
        push_kv(
            &mut s,
            "gas_per_block_max",
            &self.gas_per_block_max.to_string(),
        );
        push_kv(
            &mut s,
            "block_gas_limit",
            &self
                .block_gas_limit
                .map_or("null".into(), |l| l.to_string()),
        );
        push_kv(
            &mut s,
            "gas_utilization",
            &self
                .gas_utilization
                .map_or("null".into(), |u| format!("{u:.4}")),
        );
        push_kv(
            &mut s,
            "latency_mean_blocks",
            &format!("{:.2}", self.latency_mean_blocks),
        );
        push_kv(
            &mut s,
            "latency_max_blocks",
            &self.latency_max_blocks.to_string(),
        );
        push_kv(
            &mut s,
            "answers_collected",
            &self.answers_collected.to_string(),
        );
        push_kv(&mut s, "rewards_paid", &self.rewards_paid.to_string());
        push_kv(&mut s, "workers_paid", &self.workers_paid.to_string());
        push_kv(
            &mut s,
            "workers_rejected",
            &self.workers_rejected.to_string(),
        );
        push_kv(&mut s, "refunds", &self.refunds.to_string());
        push_kv(&mut s, "reverted_txs", &self.reverted_txs.to_string());
        push_kv(
            &mut s,
            "latency_violations",
            &self.latency_violations.to_string(),
        );
        push_kv(&mut s, "batch_dispatches", &self.batch.batches.to_string());
        push_kv(&mut s, "batch_items", &self.batch.items.to_string());
        s.push_str(&format!("\"batch_largest\":{}", self.batch.largest));
        s.push('}');
        s
    }

    /// The parallel-executor counters as one JSON object — kept separate
    /// from [`MarketReport::to_json`] so scheduler telemetry never leaks
    /// into the thread-count equivalence assertions. A thin view over
    /// [`ParallelStats::metric_set`].
    pub fn scheduler_json(&self) -> String {
        self.parallel.metric_set().to_json_object()
    }

    /// The econ layer's report as one JSON object (`null` when the layer
    /// is disabled). Deterministic across thread counts — `tests/econ.rs`
    /// asserts byte equality — so it is safe to golden-gate in CI.
    pub fn econ_json(&self) -> String {
        self.econ
            .as_ref()
            .map_or_else(|| "null".into(), EconReport::to_json)
    }

    /// The network layer's report as one JSON object (`null` when the
    /// run was single-node). Thread-count independent — safe to
    /// golden-gate in CI.
    pub fn net_json(&self) -> String {
        self.net
            .as_ref()
            .map_or_else(|| "null".into(), NetReport::to_json)
    }

    /// The proving-service counters as one JSON object. Thread-count
    /// independent (the worker-pool width is deliberately excluded) —
    /// safe to golden-gate in CI and to assert byte-equal across
    /// `DRAGOON_THREADS` (`tests/proving_equivalence.rs`).
    pub fn proving_json(&self) -> String {
        self.proving.to_json()
    }

    /// The persistence-layer counters as one JSON object (`null` when
    /// the run kept no block store). Deterministic at a fixed thread
    /// count and fixed pipeline config; golden-gate only with
    /// `exec_threads` pinned (delta byte counts track the executor's
    /// dirty-set over-approximation).
    pub fn persist_json(&self) -> String {
        self.persist
            .as_ref()
            .map_or_else(|| "null".into(), PersistStats::to_json)
    }

    /// The market-level scalars as one registry metric set
    /// (`market_*` names).
    fn market_metric_set(&self) -> dragoon_trace::MetricSet {
        let mut set = dragoon_trace::MetricSet::new("market")
            .gauge("seed", "market_seed", self.seed)
            .counter("blocks", "market_blocks_total", self.blocks)
            .counter(
                "hits_published",
                "market_hits_published_total",
                self.hits_published as u64,
            )
            .counter(
                "hits_settled",
                "market_hits_settled_total",
                self.hits_settled as u64,
            )
            .counter(
                "hits_cancelled",
                "market_hits_cancelled_total",
                self.hits_cancelled as u64,
            )
            .gauge(
                "hits_unfinished",
                "market_hits_unfinished",
                self.hits_unfinished as u64,
            )
            .counter("total_gas", "market_gas_used_total", self.total_gas)
            .gauge_f(
                "gas_per_block_mean",
                "market_gas_per_block_mean",
                self.gas_per_block_mean,
                1,
            )
            .gauge(
                "gas_per_block_max",
                "market_gas_per_block_max",
                self.gas_per_block_max,
            );
        if let Some(limit) = self.block_gas_limit {
            set = set.gauge("block_gas_limit", "market_block_gas_limit", limit);
        }
        if let Some(util) = self.gas_utilization {
            set = set.gauge_f("gas_utilization", "market_gas_utilization_ratio", util, 4);
        }
        set.gauge_f(
            "latency_mean_blocks",
            "market_latency_mean_blocks",
            self.latency_mean_blocks,
            2,
        )
        .gauge(
            "latency_max_blocks",
            "market_latency_max_blocks",
            self.latency_max_blocks,
        )
        .counter(
            "answers_collected",
            "market_answers_collected_total",
            self.answers_collected as u64,
        )
        .counter(
            "rewards_paid",
            "market_rewards_paid_coins_total",
            self.rewards_paid as i128,
        )
        .counter(
            "workers_paid",
            "market_workers_paid_total",
            self.workers_paid as u64,
        )
        .counter(
            "workers_rejected",
            "market_workers_rejected_total",
            self.workers_rejected as u64,
        )
        .counter(
            "refunds",
            "market_refunds_coins_total",
            self.refunds as i128,
        )
        .counter(
            "reverted_txs",
            "market_reverted_txs_total",
            self.reverted_txs as u64,
        )
        .counter(
            "latency_violations",
            "market_latency_violations_total",
            self.latency_violations as u64,
        )
        .counter(
            "batch_dispatches",
            "market_batch_dispatches_total",
            self.batch.batches,
        )
        .counter("batch_items", "market_batch_items_total", self.batch.items)
        .gauge(
            "batch_largest",
            "market_batch_largest_items",
            self.batch.largest,
        )
    }

    /// Every subsystem's metric set, in report order: market scalars,
    /// then scheduler, proving, and the optional econ/net/persist
    /// layers.
    pub fn metric_sets(&self) -> Vec<dragoon_trace::MetricSet> {
        let mut sets = vec![
            self.market_metric_set(),
            self.parallel.metric_set(),
            self.proving.metric_set(),
        ];
        if let Some(econ) = &self.econ {
            sets.push(econ.metric_set());
        }
        if let Some(net) = &self.net {
            sets.push(net.metric_set());
        }
        if let Some(persist) = &self.persist {
            sets.push(persist.metric_set());
        }
        sets
    }

    /// One walk over the whole metrics registry — every subsystem's
    /// counters flattened under their `subsystem_name_unit` registry
    /// names, plus the process-lifetime violation counters. Excluded
    /// from [`MarketReport::to_json`]: the dump mixes thread-dependent
    /// telemetry (scheduler, persist bytes) with the equivalence
    /// witness fields, so it must never enter the golden assertions.
    pub fn metrics_json(&self) -> String {
        dragoon_trace::metrics::render_metrics_json(&self.metric_sets(), true)
    }

    /// The same registry walk in Prometheus text exposition format
    /// (hand-rolled: `# TYPE` lines, cumulative histogram buckets,
    /// per-index labels).
    pub fn metrics_prometheus(&self) -> String {
        dragoon_trace::metrics::render_prometheus(&self.metric_sets(), true)
    }

    /// A human-oriented multi-line summary for examples and logs.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "market: {} HITs over {} blocks ({} settled, {} cancelled, {} unfinished)\n",
            self.hits_published,
            self.blocks,
            self.hits_settled,
            self.hits_cancelled,
            self.hits_unfinished
        ));
        out.push_str(&format!(
            "gas:    {:.0}k/block mean, {}k max{} — {}k total\n",
            self.gas_per_block_mean / 1_000.0,
            self.gas_per_block_max / 1_000,
            self.gas_utilization
                .map_or(String::new(), |u| format!(" ({:.0}% of cap)", u * 100.0)),
            self.total_gas / 1_000
        ));
        out.push_str(&format!(
            "settle: {:.1} blocks mean latency, {} max\n",
            self.latency_mean_blocks, self.latency_max_blocks
        ));
        out.push_str(&format!(
            "payout: {} workers paid {} coins, {} rejected, {} refunded to requesters\n",
            self.workers_paid, self.rewards_paid, self.workers_rejected, self.refunds
        ));
        out.push_str(&format!(
            "useful: {} accepted answer vectors collected\n",
            self.answers_collected
        ));
        if self.batch.batches > 0 {
            out.push_str(&format!(
                "batch:  {} dispatches covering {} proofs (largest {})\n",
                self.batch.batches, self.batch.items, self.batch.largest
            ));
        }
        if let Some(econ) = &self.econ {
            out.push_str(&econ.summary());
        }
        if self.proving.jobs > 0 {
            out.push_str(&format!(
                "prove:  {} jobs ({} released, {} stale, {} dropped), \
                 queue peak {}, latency max {} ticks, \
                 cache {} hits / {} misses\n",
                self.proving.jobs,
                self.proving.completed,
                self.proving.stale,
                self.proving.dropped,
                self.proving.queue_peak,
                self.proving.latency_max,
                self.proving.cache_hits,
                self.proving.cache_misses,
            ));
        }
        if let Some(net) = &self.net {
            out.push_str(&net.summary());
            out.push('\n');
        }
        if let Some(persist) = &self.persist {
            out.push_str(&format!(
                "store:  {} blocks logged ({}k bytes, {}k compacted away in {} truncations), \
                 {} full + {} delta snapshots ({}k bytes, {} dirty units), \
                 overlap {} hits / {} misses\n",
                persist.blocks_appended,
                persist.log_bytes_written / 1_000,
                persist.log_bytes_truncated / 1_000,
                persist.compactions,
                persist.full_snapshots,
                persist.delta_snapshots,
                persist.snapshot_bytes_written / 1_000,
                persist.dirty_units_encoded,
                persist.overlap_hits,
                persist.overlap_misses,
            ));
        }
        let p = &self.parallel;
        if p.parallel_txs + p.serial_txs > 0 {
            out.push_str(&format!(
                "sched:  {} parallel / {} serial txs in {} batches ({} groups), \
                 {} retries ({} create), {} conflict + {} gas fallbacks \
                 ({} prefix commits), {} barriers\n",
                p.parallel_txs,
                p.serial_txs,
                p.batches,
                p.groups,
                p.selective_retries,
                p.create_retries,
                p.conflict_fallbacks,
                p.gas_fallbacks,
                p.gas_prefix_commits,
                p.barriers,
            ));
        }
        out
    }
}

fn push_kv(s: &mut String, key: &str, value: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    s.push_str(value);
    s.push(',');
}
