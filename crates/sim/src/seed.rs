//! Seed injection: every binary in this repository draws its randomness
//! from an explicit `u64` seed so runs are reproducible. These helpers
//! let the seed come from the environment or the command line instead of
//! a hard-coded constant.

/// The environment variable examples and benches consult for a seed.
pub const SEED_ENV_VAR: &str = "DRAGOON_SEED";

/// Reads a seed from `DRAGOON_SEED` (decimal or `0x`-prefixed hex),
/// falling back to `default`. Malformed values fall back too — a typo'd
/// seed should not crash a long benchmark run.
pub fn seed_from_env_or(default: u64) -> u64 {
    std::env::var(SEED_ENV_VAR)
        .ok()
        .and_then(|v| parse_seed(&v))
        .unwrap_or(default)
}

/// Reads a seed from the first CLI argument, then `DRAGOON_SEED`, then
/// `default` — the precedence examples use (`cargo run --example
/// marketplace -- 42`).
pub fn seed_from_args_or(default: u64) -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|v| parse_seed(&v))
        .unwrap_or_else(|| seed_from_env_or(default))
}

fn parse_seed(v: &str) -> Option<u64> {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed(" 42 "), Some(42));
        assert_eq!(parse_seed("0x2a"), Some(42));
        assert_eq!(parse_seed("0X2A"), Some(42));
        assert_eq!(parse_seed("nope"), None);
    }
}
