//! Chrome `trace_event` export for the wall-clock profiler layer.
//!
//! Writes the JSON Object Format understood by `chrome://tracing` and
//! Perfetto: a `traceEvents` array of complete events (`ph:"X"`, `ts`
//! and `dur` in microseconds since the trace epoch) plus `thread_name`
//! metadata events, so the execute / overlap-verify / block-writer /
//! proving-pool timeline renders as named tracks. Wall-clock data
//! never enters the deterministic stream — see the crate docs.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};

use crate::{drain_wall, WallSpan};

fn push_span(out: &mut String, span: &WallSpan) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":1,\"tid\":{},\"args\":{{\"tick\":{}",
        span.kind.name(),
        span.kind.category(),
        span.start_us,
        span.dur_us,
        span.tid,
        span.tick,
    );
    for (k, v) in &span.args {
        let _ = write!(out, ",\"{k}\":{v}");
    }
    out.push_str("}}");
}

/// Serializes all recorded wall spans (plus thread-name metadata) as
/// one Chrome trace JSON document.
pub fn render_chrome_trace() -> (String, usize) {
    let (mut spans, threads) = drain_wall();
    spans.sort_by_key(|s| (s.tid, s.start_us));
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (tid, name) in &threads {
        if !first {
            out.push(',');
        }
        first = false;
        let safe: String = name
            .chars()
            .map(|c| if c == '"' || c == '\\' { '_' } else { c })
            .collect();
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{safe}\"}}}}",
        );
    }
    for span in &spans {
        if !first {
            out.push(',');
        }
        first = false;
        push_span(&mut out, span);
    }
    out.push_str("]}");
    (out, spans.len())
}

/// Writes the Chrome trace to `path`, returning the span count.
pub fn write_chrome_trace(path: &str) -> std::io::Result<usize> {
    let (doc, count) = render_chrome_trace();
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(doc.as_bytes())?;
    w.flush()?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_skeleton_when_empty() {
        let (doc, _) = render_chrome_trace();
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.ends_with("]}"));
    }
}
