//! # dragoon-trace — unified observability for the dragoon pipeline
//!
//! Three layers, strictly separated:
//!
//! 1. **Deterministic span/event stream** ([`event`]) — structured
//!    events on the *virtual clock* (block execute/verify/persist/
//!    prove/gossip/reorg) with typed `u64` attributes. Events are
//!    recorded into a per-thread buffer and merged by `(tick, seq)`,
//!    so the collected stream is a pure function of `(seed, config)`:
//!    byte-identical at any `DRAGOON_THREADS`, with the pipelined or
//!    the synchronous store, and therefore golden-gatable. Emission
//!    sites MUST be deterministic program points (the round loop, a
//!    service's submit/drain edges) — never inside a worker thread.
//! 2. **Metrics registry** ([`metrics`]) — named counters/gauges/
//!    histograms following the `subsystem_name_unit` convention, with
//!    a hand-rolled Prometheus-text exporter. The per-subsystem stats
//!    structs build [`metrics::MetricSet`]s; their legacy `*_json`
//!    methods are thin views over the same sets (byte-identical to the
//!    historical hand-rolled serialization, so goldens are unchanged).
//!    A small always-on process registry ([`metrics::counter_inc`])
//!    carries invariant-violation counters that must be observable in
//!    release builds.
//! 3. **Wall-clock phase profiler** ([`span`]) — `Instant`-based span
//!    durations kept *strictly outside* the deterministic stream (they
//!    never appear in captured events or goldens), exported as Chrome
//!    `trace_event` JSON via `DRAGOON_TRACE=out.json` and openable in
//!    `chrome://tracing` or Perfetto. Worker threads (the block
//!    writer, the overlap verifier, proving-pool workers) may record
//!    wall spans freely: ordering there comes from timestamps, not
//!    from the deterministic merge.
//!
//! **The deterministic-vs-wallclock split is the load-bearing design
//! rule**: anything derived from `Instant::now()` lives only in layer
//! 3; anything in layer 1 must be reproducible from `(seed, config)`
//! alone. Mixing the two would make the trace goldens flaky.
//!
//! Tracing is zero-cost when disabled: every emission site branches on
//! one relaxed atomic load of a static flag word and returns
//! immediately. Nothing is allocated, locked, or timestamped until a
//! layer is switched on via [`init_from_env`] (binaries) or
//! [`start_capture`] (tests).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

pub mod chrome;
pub mod metrics;

pub use metrics::{
    counter_add, counter_inc, registry_counters, MetricKind, MetricSet, MetricValue,
};

// ---------------------------------------------------------------------
// Enable flags: one static word, branch-only when off
// ---------------------------------------------------------------------

const DET: u8 = 1 << 0;
const WALL: u8 = 1 << 1;

static FLAGS: AtomicU8 = AtomicU8::new(0);

/// Whether the deterministic event stream is being recorded.
#[inline]
pub fn deterministic_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & DET != 0
}

/// Whether wall-clock spans are being recorded.
#[inline]
pub fn wall_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & WALL != 0
}

/// Whether any tracing layer is on.
#[inline]
pub fn enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) != 0
}

// ---------------------------------------------------------------------
// Span taxonomy
// ---------------------------------------------------------------------

/// The span/event taxonomy. One variant per pipeline phase; the same
/// kinds name both deterministic events and wall-clock spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One block's transaction execution (the parallel scheduler run).
    Execute,
    /// Batched settlement-proof verification for one block's verdicts.
    Verify,
    /// Appending one produced block to the on-disk log.
    Persist,
    /// Publishing a snapshot artifact (full or delta) at the cadence.
    Snapshot,
    /// Submitting a batch of proof jobs to the proving service.
    Prove,
    /// Proof jobs released from the proving queue into the mempool.
    Release,
    /// Broadcasting one produced block over the simulated network.
    Gossip,
    /// A stale replica producing a competing (fork) block.
    Fork,
    /// A replica switching branches, popping applied blocks.
    Reorg,
}

impl SpanKind {
    /// Stable lowercase name used in event JSON and Chrome traces.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Execute => "execute",
            SpanKind::Verify => "verify",
            SpanKind::Persist => "persist",
            SpanKind::Snapshot => "snapshot",
            SpanKind::Prove => "prove",
            SpanKind::Release => "release",
            SpanKind::Gossip => "gossip",
            SpanKind::Fork => "fork",
            SpanKind::Reorg => "reorg",
        }
    }

    /// Chrome trace category (groups related phases in the UI).
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Execute => "chain",
            SpanKind::Verify => "verify",
            SpanKind::Persist | SpanKind::Snapshot => "store",
            SpanKind::Prove | SpanKind::Release => "prove",
            SpanKind::Gossip | SpanKind::Fork | SpanKind::Reorg => "net",
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic events
// ---------------------------------------------------------------------

/// One deterministic event: a phase at a virtual-clock tick with typed
/// attributes. The global `seq` orders events within a tick; because
/// deterministic sites emit from deterministic program points, the
/// `(tick, seq)` order is itself a pure function of `(seed, config)`.
#[derive(Clone, Debug)]
pub struct Event {
    pub tick: u64,
    pub seq: u64,
    pub kind: SpanKind,
    pub attrs: Vec<(&'static str, u64)>,
}

impl Event {
    /// One JSON line, stable field order: tick, seq, span, then attrs
    /// in emission order.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"tick\":");
        s.push_str(&self.tick.to_string());
        s.push_str(",\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"span\":\"");
        s.push_str(self.kind.name());
        s.push('"');
        for (k, v) in &self.attrs {
            s.push_str(",\"");
            s.push_str(k);
            s.push_str("\":");
            s.push_str(&v.to_string());
        }
        s.push('}');
        s
    }
}

static EVENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Records one deterministic event. No-op (one branch) unless the
/// deterministic layer is enabled. Call only from deterministic
/// program points — see the module docs.
#[inline]
pub fn event(kind: SpanKind, tick: u64, attrs: &[(&'static str, u64)]) {
    if !deterministic_enabled() {
        return;
    }
    let seq = EVENT_SEQ.fetch_add(1, Ordering::Relaxed);
    with_lane(|lane| {
        lane.det.push(Event {
            tick,
            seq,
            kind,
            attrs: attrs.to_vec(),
        });
        if lane.det.len() >= LANE_CAP {
            lane.flush();
        }
    });
}

// ---------------------------------------------------------------------
// Wall-clock spans
// ---------------------------------------------------------------------

/// One completed wall-clock span (Chrome `ph:"X"` complete event).
#[derive(Clone, Debug)]
pub struct WallSpan {
    pub kind: SpanKind,
    pub tick: u64,
    /// Microseconds since the trace epoch.
    pub start_us: u64,
    pub dur_us: u64,
    pub tid: u64,
    pub args: Vec<(&'static str, u64)>,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// RAII guard timing one phase on the wall clock. Construct via
/// [`span`]; the duration is recorded on drop. Entirely a no-op when
/// the wall layer is off.
pub struct SpanGuard(Option<SpanInner>);

struct SpanInner {
    kind: SpanKind,
    tick: u64,
    start: Instant,
    args: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Attaches an argument shown in the Chrome trace's detail pane.
    #[inline]
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = &mut self.0 {
            inner.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            let start_us = inner
                .start
                .saturating_duration_since(epoch())
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            let dur_us = inner.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            with_lane(|lane| {
                let tid = lane.tid;
                lane.wall.push(WallSpan {
                    kind: inner.kind,
                    tick: inner.tick,
                    start_us,
                    dur_us,
                    tid,
                    args: inner.args,
                });
                if lane.wall.len() >= LANE_CAP {
                    lane.flush();
                }
            });
        }
    }
}

/// Opens a wall-clock span for `kind` at virtual tick `tick`. One
/// branch and no work when the wall layer is off. Safe from any
/// thread: worker threads get their own lane and thread id.
#[inline]
pub fn span(kind: SpanKind, tick: u64) -> SpanGuard {
    if !wall_enabled() {
        return SpanGuard(None);
    }
    // Pin the epoch before taking the start timestamp so the first
    // span never starts before the epoch.
    let _ = epoch();
    SpanGuard(Some(SpanInner {
        kind,
        tick,
        start: Instant::now(),
        args: Vec::new(),
    }))
}

// ---------------------------------------------------------------------
// Per-thread lanes and the global sink
// ---------------------------------------------------------------------

const LANE_CAP: usize = 256;

struct Lane {
    tid: u64,
    det: Vec<Event>,
    wall: Vec<WallSpan>,
}

impl Lane {
    fn new() -> Self {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .unwrap_or("unnamed")
            .to_string();
        lock_sink().threads.push((tid, name));
        Lane {
            tid,
            det: Vec::new(),
            wall: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.det.is_empty() && self.wall.is_empty() {
            return;
        }
        let mut sink = lock_sink();
        sink.det.append(&mut self.det);
        sink.wall.append(&mut self.wall);
    }
}

impl Drop for Lane {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LANE: RefCell<Option<Lane>> = const { RefCell::new(None) };
}

fn with_lane(f: impl FnOnce(&mut Lane)) {
    LANE.with(|cell| {
        let mut slot = cell.borrow_mut();
        f(slot.get_or_insert_with(Lane::new));
    });
}

/// Flushes the calling thread's lane into the global sink.
pub fn flush_thread() {
    LANE.with(|cell| {
        if let Some(lane) = cell.borrow_mut().as_mut() {
            lane.flush();
        }
    });
}

#[derive(Default)]
struct Sink {
    det: Vec<Event>,
    wall: Vec<WallSpan>,
    threads: Vec<(u64, String)>,
}

fn lock_sink() -> MutexGuard<'static, Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Drains the deterministic stream: merges all flushed lanes, sorts by
/// `(tick, seq)`, and renders one JSON line per event. Call only after
/// all worker threads of the traced run have been joined.
pub fn drain_deterministic_lines() -> Vec<String> {
    flush_thread();
    let mut det = std::mem::take(&mut lock_sink().det);
    det.sort_by_key(|e| (e.tick, e.seq));
    det.iter().map(Event::to_json).collect()
}

pub(crate) fn drain_wall() -> (Vec<WallSpan>, Vec<(u64, String)>) {
    flush_thread();
    let mut sink = lock_sink();
    let spans = std::mem::take(&mut sink.wall);
    let threads = sink.threads.clone();
    (spans, threads)
}

// ---------------------------------------------------------------------
// Capture sessions (tests, benches)
// ---------------------------------------------------------------------

static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

/// A scoped recording session for tests and benches. Holds a global
/// lock so concurrent tests in one binary cannot interleave their
/// streams; restores the prior enable flags and drains the sink on
/// [`Capture::finish`].
pub struct Capture {
    _guard: MutexGuard<'static, ()>,
    prior: u8,
}

fn begin_capture(flags: u8) -> Capture {
    let guard = CAPTURE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    // Clear any residue from a previous session on this thread and in
    // the sink, and restart the merge sequence.
    flush_thread();
    {
        let mut sink = lock_sink();
        sink.det.clear();
        sink.wall.clear();
    }
    EVENT_SEQ.store(0, Ordering::Relaxed);
    let prior = FLAGS.swap(flags, Ordering::SeqCst);
    Capture {
        _guard: guard,
        prior,
    }
}

/// Starts recording the deterministic event stream only (wall layer
/// stays off, so captures are themselves deterministic).
pub fn start_capture() -> Capture {
    begin_capture(DET)
}

/// Starts recording both layers — used by the overhead bench to price
/// fully-enabled tracing.
pub fn start_full_capture() -> Capture {
    begin_capture(DET | WALL)
}

impl Capture {
    /// Stops recording and returns the merged deterministic stream as
    /// JSON lines. Wall spans recorded during the capture are
    /// discarded (they are nondeterministic by definition).
    pub fn finish(self) -> Vec<String> {
        FLAGS.store(self.prior, Ordering::SeqCst);
        let lines = drain_deterministic_lines();
        lock_sink().wall.clear();
        lines
    }
}

// ---------------------------------------------------------------------
// Binary entry points: env init / finish / summary lines
// ---------------------------------------------------------------------

struct EnvConfig {
    chrome_path: Option<String>,
    print_events: bool,
}

static ENV_CONFIG: OnceLock<EnvConfig> = OnceLock::new();

/// Reads the tracing environment and switches the layers on:
///
/// * `DRAGOON_TRACE=out.json` — record wall-clock spans and write a
///   Chrome `trace_event` file at [`finish`].
/// * `DRAGOON_TRACE_EVENTS=1` — record the deterministic stream and
///   print it as `TRACE: {json}` lines at [`finish`] (the CI trace
///   golden greps these).
///
/// Call once at the top of a binary's `main`.
pub fn init_from_env() {
    let chrome_path = std::env::var("DRAGOON_TRACE")
        .ok()
        .filter(|p| !p.is_empty());
    let print_events = std::env::var("DRAGOON_TRACE_EVENTS")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    let mut flags = 0;
    if chrome_path.is_some() {
        flags |= WALL;
        let _ = epoch();
    }
    if print_events {
        flags |= DET;
    }
    let config = EnvConfig {
        chrome_path,
        print_events,
    };
    if ENV_CONFIG.set(config).is_ok() && flags != 0 {
        FLAGS.fetch_or(flags, Ordering::SeqCst);
    }
}

/// Finalizes env-driven tracing: prints `TRACE:` lines when
/// `DRAGOON_TRACE_EVENTS` asked for them and writes the Chrome trace
/// file when `DRAGOON_TRACE` named one. Call at the end of `main`,
/// after the traced run (and its threads) completed.
pub fn finish() {
    let Some(config) = ENV_CONFIG.get() else {
        return;
    };
    if config.print_events {
        for line in drain_deterministic_lines() {
            println!("TRACE: {line}");
        }
    }
    if let Some(path) = &config.chrome_path {
        match chrome::write_chrome_trace(path) {
            Ok(n) => eprintln!("trace: wrote {n} spans to {path}"),
            Err(e) => eprintln!("trace: failed to write {path}: {e}"),
        }
    }
}

/// Prints one stable machine-readable summary line: `KEY: {json}` —
/// the single format every example and bench binary uses, and the one
/// the CI golden greps anchor on.
pub fn emit_summary(key: &str, json: impl AsRef<str>) {
    println!("{}: {}", key, json.as_ref());
}
