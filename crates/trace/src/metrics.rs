//! The metrics registry: typed metric sets built by the per-subsystem
//! stats structs, rendered either as the legacy flat-JSON objects
//! (byte-identical to the historical hand-rolled serialization, so
//! goldens are unchanged) or as Prometheus text exposition — one
//! registry walk instead of five ad-hoc `format!`s.
//!
//! Naming convention: every metric carries a registry name of the
//! form `subsystem_name_unit` (e.g. `proving_queue_peak_jobs`,
//! `persist_log_bytes_written_total`) next to its legacy JSON key.
//! Counters end in `_total`; gauges name their unit; histograms
//! render cumulative `_bucket{le=...}` lines per Prometheus
//! convention.
//!
//! A separate always-on **process registry** ([`counter_inc`]) holds
//! counters that must be observable even when no report is being
//! assembled — the clamp-violation counters (engine latency, proving
//! latency, econ reputation decay) route through it so a release
//! build can see an invariant breach without debug asserts.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock, PoisonError};

/// How a metric behaves over time (drives the Prometheus `# TYPE`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn prom_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A metric's value, carrying enough formatting information to render
/// the legacy JSON byte-identically.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Integer counter or gauge (covers u64/i64/u128 report fields).
    Int(i128),
    /// Float gauge with a fixed decimal precision (legacy `{:.p}`).
    Float(f64, usize),
    /// Boolean flag (JSON `true`/`false`, Prometheus `1`/`0`).
    Flag(bool),
    /// Fixed-bucket histogram counts plus upper-bound labels for the
    /// Prometheus `le=` rendering (same length; last is `+Inf`).
    Hist(Vec<u64>, &'static [&'static str]),
    /// Per-index integer list (e.g. per-node convergence ticks);
    /// rendered as a JSON array and as one labelled line per index.
    PerIndex(Vec<i64>, &'static str),
}

impl MetricValue {
    fn render_json(&self, out: &mut String) {
        match self {
            MetricValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Float(v, prec) => {
                let _ = write!(out, "{v:.prec$}");
            }
            MetricValue::Flag(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Hist(counts, _) => {
                out.push('[');
                for (i, c) in counts.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{c}");
                }
                out.push(']');
            }
            MetricValue::PerIndex(values, _) => {
                out.push('[');
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{v}");
                }
                out.push(']');
            }
        }
    }
}

/// One named metric: the legacy JSON key it serializes under, the
/// `subsystem_name_unit` registry name, its kind, and its value.
#[derive(Clone, Debug)]
pub struct Metric {
    pub key: &'static str,
    pub name: &'static str,
    pub kind: MetricKind,
    pub value: MetricValue,
}

/// An ordered collection of metrics for one subsystem. Order is the
/// serialization order — the legacy JSON view depends on it.
#[derive(Clone, Debug, Default)]
pub struct MetricSet {
    pub subsystem: &'static str,
    pub metrics: Vec<Metric>,
}

impl MetricSet {
    pub fn new(subsystem: &'static str) -> Self {
        MetricSet {
            subsystem,
            metrics: Vec::new(),
        }
    }

    fn push(
        mut self,
        key: &'static str,
        name: &'static str,
        kind: MetricKind,
        value: MetricValue,
    ) -> Self {
        self.metrics.push(Metric {
            key,
            name,
            kind,
            value,
        });
        self
    }

    /// A monotonically increasing integer (name should end `_total`).
    pub fn counter(self, key: &'static str, name: &'static str, value: impl Into<i128>) -> Self {
        self.push(
            key,
            name,
            MetricKind::Counter,
            MetricValue::Int(value.into()),
        )
    }

    /// A point-in-time integer reading.
    pub fn gauge(self, key: &'static str, name: &'static str, value: impl Into<i128>) -> Self {
        self.push(key, name, MetricKind::Gauge, MetricValue::Int(value.into()))
    }

    /// A float gauge rendered with `precision` decimals in JSON.
    pub fn gauge_f(
        self,
        key: &'static str,
        name: &'static str,
        value: f64,
        precision: usize,
    ) -> Self {
        self.push(
            key,
            name,
            MetricKind::Gauge,
            MetricValue::Float(value, precision),
        )
    }

    /// A boolean gauge.
    pub fn flag(self, key: &'static str, name: &'static str, value: bool) -> Self {
        self.push(key, name, MetricKind::Gauge, MetricValue::Flag(value))
    }

    /// A fixed-bucket histogram; `bounds` are the Prometheus `le=`
    /// labels, one per bucket, last `+Inf`.
    pub fn hist(
        self,
        key: &'static str,
        name: &'static str,
        counts: Vec<u64>,
        bounds: &'static [&'static str],
    ) -> Self {
        debug_assert_eq!(counts.len(), bounds.len());
        self.push(
            key,
            name,
            MetricKind::Histogram,
            MetricValue::Hist(counts, bounds),
        )
    }

    /// A per-index gauge list labelled `{label="i"}` in Prometheus.
    pub fn per_index(
        self,
        key: &'static str,
        name: &'static str,
        values: Vec<i64>,
        label: &'static str,
    ) -> Self {
        self.push(
            key,
            name,
            MetricKind::Gauge,
            MetricValue::PerIndex(values, label),
        )
    }

    /// The legacy flat-JSON view: `{"key":value,...}` in insertion
    /// order, byte-identical to the historical hand-rolled
    /// serialization of the stats struct that built this set.
    pub fn to_json_object(&self) -> String {
        let mut s = String::with_capacity(16 + self.metrics.len() * 24);
        s.push('{');
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(m.key);
            s.push_str("\":");
            m.value.render_json(&mut s);
        }
        s.push('}');
        s
    }

    fn render_prometheus(&self, out: &mut String) {
        for m in &self.metrics {
            let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind.prom_type());
            match &m.value {
                MetricValue::Int(v) => {
                    let _ = writeln!(out, "{} {}", m.name, v);
                }
                MetricValue::Float(v, prec) => {
                    let _ = writeln!(out, "{} {:.prec$}", m.name, v);
                }
                MetricValue::Flag(v) => {
                    let _ = writeln!(out, "{} {}", m.name, u8::from(*v));
                }
                MetricValue::Hist(counts, bounds) => {
                    let mut cumulative = 0u64;
                    for (c, le) in counts.iter().zip(bounds.iter()) {
                        cumulative += c;
                        let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", m.name, le, cumulative);
                    }
                    let _ = writeln!(out, "{}_count {}", m.name, cumulative);
                }
                MetricValue::PerIndex(values, label) => {
                    for (i, v) in values.iter().enumerate() {
                        let _ = writeln!(out, "{}{{{}=\"{}\"}} {}", m.name, label, i, v);
                    }
                }
            }
        }
    }
}

/// One registry walk over every subsystem's set plus the process
/// counters, as a flat JSON object keyed by registry name.
pub fn render_metrics_json(sets: &[MetricSet], include_process: bool) -> String {
    let mut s = String::with_capacity(1024);
    s.push('{');
    let mut first = true;
    for set in sets {
        for m in &set.metrics {
            if !first {
                s.push(',');
            }
            first = false;
            s.push('"');
            s.push_str(m.name);
            s.push_str("\":");
            m.value.render_json(&mut s);
        }
    }
    if include_process {
        for (name, value) in registry_counters() {
            if !first {
                s.push(',');
            }
            first = false;
            s.push('"');
            s.push_str(name);
            s.push_str("\":");
            let _ = write!(s, "{value}");
        }
    }
    s.push('}');
    s
}

/// The same walk rendered as Prometheus text exposition format.
pub fn render_prometheus(sets: &[MetricSet], include_process: bool) -> String {
    let mut s = String::with_capacity(2048);
    for set in sets {
        set.render_prometheus(&mut s);
    }
    if include_process {
        for (name, value) in registry_counters() {
            let _ = writeln!(s, "# TYPE {name} counter");
            let _ = writeln!(s, "{name} {value}");
        }
    }
    s
}

// ---------------------------------------------------------------------
// Always-on process registry
// ---------------------------------------------------------------------

fn process_registry() -> &'static Mutex<BTreeMap<&'static str, u64>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

/// Adds `delta` to a process-lifetime counter. Always on (not gated by
/// the tracing flags): these carry rare-event counters — invariant
/// violations — whose cost is paid only when the event fires.
pub fn counter_add(name: &'static str, delta: u64) {
    let mut reg = process_registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    *reg.entry(name).or_insert(0) += delta;
}

/// Increments a process-lifetime counter by one.
pub fn counter_inc(name: &'static str) {
    counter_add(name, 1);
}

/// A sorted snapshot of the process-lifetime counters.
pub fn registry_counters() -> Vec<(&'static str, u64)> {
    process_registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (*k, *v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_json_view_matches_hand_rolled_format() {
        let set = MetricSet::new("demo")
            .counter("jobs", "demo_jobs_total", 7u64)
            .gauge_f("rate", "demo_rate_ratio", 0.5, 3)
            .flag("converged", "demo_converged", true)
            .hist(
                "latency_hist",
                "demo_latency_ticks",
                vec![1, 2, 3],
                &["0", "1", "+Inf"],
            )
            .per_index("per_node", "demo_per_node_tick", vec![4, -1], "node");
        assert_eq!(
            set.to_json_object(),
            "{\"jobs\":7,\"rate\":0.500,\"converged\":true,\
             \"latency_hist\":[1,2,3],\"per_node\":[4,-1]}"
        );
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_typed() {
        let set = MetricSet::new("demo").hist(
            "latency_hist",
            "demo_latency_ticks",
            vec![1, 2, 3],
            &["0", "1", "+Inf"],
        );
        let text = render_prometheus(&[set], false);
        assert!(text.contains("# TYPE demo_latency_ticks histogram"));
        assert!(text.contains("demo_latency_ticks_bucket{le=\"0\"} 1"));
        assert!(text.contains("demo_latency_ticks_bucket{le=\"1\"} 3"));
        assert!(text.contains("demo_latency_ticks_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("demo_latency_ticks_count 6"));
    }

    #[test]
    fn process_counters_accumulate() {
        counter_add("trace_test_demo_total", 2);
        counter_inc("trace_test_demo_total");
        let snapshot = registry_counters();
        let v = snapshot
            .iter()
            .find(|(k, _)| *k == "trace_test_demo_total")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(v >= 3);
    }
}
