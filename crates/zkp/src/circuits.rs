//! The baseline statements, compiled to R1CS: generic-ZKP analogues of
//! VPKE and PoQoEA (what Tables I & II call "Generic ZKP").
//!
//! * [`vpke_circuit`] — verifiable decryption of ONE ElGamal ciphertext
//!   over the embedded curve: prove knowledge of the secret key `k` with
//!   `k·G = PK` and `c2 − k·c1 = M` for public `(c1, c2, PK, M)`.
//! * [`poqoea_circuit`] — the quality statement over `|G|` gold-standard
//!   ciphertexts: one shared key consistency check plus, per gold
//!   standard, a decryption and (for claimed mismatches) a
//!   point-inequality against the gold answer.
//!
//! Constraint counts land in the tens of thousands — the same regime as
//! the paper's RSA-OAEP-based libsnark circuits — which is what drives
//! the multi-second proving times of Table I.

use crate::gadgets::{
    alloc_bits, alloc_public_point, enforce_points_differ, enforce_points_equal, point_add,
    scalar_mul, PointVar,
};
use crate::jubjub::{JubCiphertext, JubPoint};
use crate::r1cs::ConstraintSystem;
use dragoon_crypto::Fr;

/// Bits of the secret key decomposed in-circuit.
pub const KEY_BITS: usize = 251;

/// Public instance of the baseline VPKE statement.
#[derive(Clone, Copy, Debug)]
pub struct VpkeInstance {
    /// The ciphertext.
    pub ct: JubCiphertext,
    /// The public key `PK = k·G`.
    pub pk: JubPoint,
    /// The claimed message point `M = m·G`.
    pub m_point: JubPoint,
}

impl VpkeInstance {
    /// Flattens to the public-input vector (in allocation order).
    pub fn public_inputs(&self) -> Vec<Fr> {
        vec![
            self.ct.c1.x,
            self.ct.c1.y,
            self.ct.c2.x,
            self.ct.c2.y,
            self.pk.x,
            self.pk.y,
            self.m_point.x,
            self.m_point.y,
        ]
    }
}

/// Builds the VPKE circuit with the witness `k` (secret key).
///
/// Statement: `∃k: k·G = PK ∧ k·c1 + M = c2`.
pub fn vpke_circuit(instance: &VpkeInstance, k: &Fr) -> ConstraintSystem {
    vpke_circuit_with_bits(instance, k, KEY_BITS)
}

/// [`vpke_circuit`] with an explicit key width — smaller widths give
/// proportionally smaller circuits (used by fast integration tests; the
/// key must fit the width).
pub fn vpke_circuit_with_bits(
    instance: &VpkeInstance,
    k: &Fr,
    key_bits: usize,
) -> ConstraintSystem {
    let mut cs = ConstraintSystem::new();
    // Public wires, in the order `public_inputs` flattens them.
    let c1 = alloc_public_point(&mut cs, &instance.ct.c1);
    let c2 = alloc_public_point(&mut cs, &instance.ct.c2);
    let pk = alloc_public_point(&mut cs, &instance.pk);
    let m = alloc_public_point(&mut cs, &instance.m_point);

    // Witness: bits of k.
    let bits = alloc_bits(&mut cs, k, key_bits);

    // k·G = PK (fixed base — the generator is still a wire pair here;
    // a production circuit would use windowed fixed-base tables, which
    // changes constants, not orders of magnitude).
    let g = JubPoint::generator();
    let g_var = PointVar {
        x: cs.alloc_public(g.x),
        y: cs.alloc_public(g.y),
    };
    let kg = scalar_mul(&mut cs, &bits, g_var);
    enforce_points_equal(&mut cs, kg, pk);

    // k·c1 + M = c2.
    let kc1 = scalar_mul(&mut cs, &bits, c1);
    let sum = point_add(&mut cs, kc1, m);
    enforce_points_equal(&mut cs, sum, c2);
    cs
}

/// The public inputs of [`vpke_circuit`] including the generator wires.
pub fn vpke_public_inputs(instance: &VpkeInstance) -> Vec<Fr> {
    let mut v = instance.public_inputs();
    let g = JubPoint::generator();
    v.push(g.x);
    v.push(g.y);
    v
}

/// Public instance of the baseline PoQoEA statement: the gold-standard
/// ciphertexts, the claimed decryptions, and which of them are
/// mismatches.
#[derive(Clone, Debug)]
pub struct PoqoeaInstance {
    /// The public key.
    pub pk: JubPoint,
    /// Gold-standard ciphertexts `c_i`.
    pub cts: Vec<JubCiphertext>,
    /// Claimed message points `M_i` (the decryptions, revealed — the
    /// "already-leaked" gold positions).
    pub m_points: Vec<JubPoint>,
    /// Gold answers as points `g^{s_i}`.
    pub gold_points: Vec<JubPoint>,
    /// Which positions are claimed mismatches (quality = #matches).
    pub mismatch: Vec<bool>,
}

/// Builds the PoQoEA circuit: one key, `|G|` decryptions, inequality at
/// every claimed mismatch and equality elsewhere.
pub fn poqoea_circuit(instance: &PoqoeaInstance, k: &Fr) -> ConstraintSystem {
    assert_eq!(instance.cts.len(), instance.m_points.len());
    assert_eq!(instance.cts.len(), instance.gold_points.len());
    assert_eq!(instance.cts.len(), instance.mismatch.len());
    let mut cs = ConstraintSystem::new();

    let pk = alloc_public_point(&mut cs, &instance.pk);
    let g = JubPoint::generator();
    let g_var = PointVar {
        x: cs.alloc_public(g.x),
        y: cs.alloc_public(g.y),
    };
    let mut ct_vars = Vec::new();
    let mut m_vars = Vec::new();
    let mut gold_vars = Vec::new();
    for ((ct, m), gold) in instance
        .cts
        .iter()
        .zip(&instance.m_points)
        .zip(&instance.gold_points)
    {
        let c1 = alloc_public_point(&mut cs, &ct.c1);
        let c2 = alloc_public_point(&mut cs, &ct.c2);
        let m = alloc_public_point(&mut cs, m);
        let gp = alloc_public_point(&mut cs, gold);
        ct_vars.push((c1, c2));
        m_vars.push(m);
        gold_vars.push(gp);
    }

    // Shared key bits + key consistency.
    let bits = alloc_bits(&mut cs, k, KEY_BITS);
    let kg = scalar_mul(&mut cs, &bits, g_var);
    enforce_points_equal(&mut cs, kg, pk);

    // Per gold standard: decryption correctness + match/mismatch shape.
    for (i, ((c1, c2), m)) in ct_vars.iter().zip(&m_vars).enumerate() {
        let kc1 = scalar_mul(&mut cs, &bits, *c1);
        let sum = point_add(&mut cs, kc1, *m);
        enforce_points_equal(&mut cs, sum, *c2);
        if instance.mismatch[i] {
            enforce_points_differ(&mut cs, *m, gold_vars[i]);
        } else {
            enforce_points_equal(&mut cs, *m, gold_vars[i]);
        }
    }
    cs
}

/// The public-input vector of [`poqoea_circuit`], in allocation order.
pub fn poqoea_public_inputs(instance: &PoqoeaInstance) -> Vec<Fr> {
    let mut v = vec![instance.pk.x, instance.pk.y];
    let g = JubPoint::generator();
    v.push(g.x);
    v.push(g.y);
    for ((ct, m), gold) in instance
        .cts
        .iter()
        .zip(&instance.m_points)
        .zip(&instance.gold_points)
    {
        v.extend_from_slice(&[ct.c1.x, ct.c1.y, ct.c2.x, ct.c2.y, m.x, m.y, gold.x, gold.y]);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jubjub::{jub_decrypt_point, jub_encrypt, JubKeyPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xc12c)
    }

    #[test]
    fn vpke_circuit_satisfied_by_honest_witness() {
        let mut rng = rng();
        let kp = JubKeyPair::generate(&mut rng);
        let ct = jub_encrypt(&kp.pk, 1, &mut rng);
        let m_point = jub_decrypt_point(&kp.sk, &ct);
        let instance = VpkeInstance {
            ct,
            pk: kp.pk,
            m_point,
        };
        let cs = vpke_circuit(&instance, &kp.sk);
        cs.is_satisfied().unwrap();
        // The circuit is in the tens-of-thousands-of-constraints regime.
        assert!(
            cs.num_constraints() > 5_000,
            "constraints = {}",
            cs.num_constraints()
        );
    }

    #[test]
    fn vpke_circuit_rejects_wrong_message() {
        let mut rng = rng();
        let kp = JubKeyPair::generate(&mut rng);
        let ct = jub_encrypt(&kp.pk, 1, &mut rng);
        // Claim decryption to 0·G instead.
        let instance = VpkeInstance {
            ct,
            pk: kp.pk,
            m_point: JubPoint::identity(),
        };
        let cs = vpke_circuit(&instance, &kp.sk);
        assert!(cs.is_satisfied().is_err());
    }

    #[test]
    fn vpke_circuit_rejects_wrong_key() {
        let mut rng = rng();
        let kp = JubKeyPair::generate(&mut rng);
        let other = JubKeyPair::generate(&mut rng);
        let ct = jub_encrypt(&kp.pk, 1, &mut rng);
        let m_point = jub_decrypt_point(&kp.sk, &ct);
        let instance = VpkeInstance {
            ct,
            pk: kp.pk,
            m_point,
        };
        let cs = vpke_circuit(&instance, &other.sk);
        assert!(cs.is_satisfied().is_err());
    }

    #[test]
    fn poqoea_circuit_full_flow() {
        let mut rng = rng();
        let kp = JubKeyPair::generate(&mut rng);
        let golds = [1u64, 0, 1];
        let answers = [1u64, 1, 0]; // match, mismatch, mismatch
        let g = JubPoint::generator();
        let mut cts = Vec::new();
        let mut m_points = Vec::new();
        let mut gold_points = Vec::new();
        let mut mismatch = Vec::new();
        for (s, a) in golds.iter().zip(&answers) {
            let ct = jub_encrypt(&kp.pk, *a, &mut rng);
            cts.push(ct);
            m_points.push(jub_decrypt_point(&kp.sk, &ct));
            gold_points.push(g.mul_scalar(&Fr::from_u64(*s)));
            mismatch.push(a != s);
        }
        let instance = PoqoeaInstance {
            pk: kp.pk,
            cts,
            m_points,
            gold_points,
            mismatch,
        };
        let cs = poqoea_circuit(&instance, &kp.sk);
        cs.is_satisfied().unwrap();
        // Roughly |G|+1 scalar multiplications worth of constraints.
        assert!(
            cs.num_constraints() > 15_000,
            "constraints = {}",
            cs.num_constraints()
        );
        assert_eq!(poqoea_public_inputs(&instance).len(), 2 + 2 + 3 * 8);
    }

    #[test]
    fn poqoea_circuit_rejects_false_mismatch_claim() {
        let mut rng = rng();
        let kp = JubKeyPair::generate(&mut rng);
        let g = JubPoint::generator();
        // The answer matches the gold standard, but we claim a mismatch.
        let ct = jub_encrypt(&kp.pk, 1, &mut rng);
        let instance = PoqoeaInstance {
            pk: kp.pk,
            cts: vec![ct],
            m_points: vec![jub_decrypt_point(&kp.sk, &ct)],
            gold_points: vec![g.mul_scalar(&Fr::one())],
            mismatch: vec![true], // lie
        };
        let cs = poqoea_circuit(&instance, &kp.sk);
        assert!(cs.is_satisfied().is_err());
    }

    #[test]
    fn public_input_vectors_have_expected_lengths() {
        let mut rng = rng();
        let kp = JubKeyPair::generate(&mut rng);
        let ct = jub_encrypt(&kp.pk, 0, &mut rng);
        let inst = VpkeInstance {
            ct,
            pk: kp.pk,
            m_point: JubPoint::identity(),
        };
        assert_eq!(vpke_public_inputs(&inst).len(), 10);
    }
}
