//! A keyed CRS cache for the Groth16 baseline.
//!
//! [`groth16::setup`] is per-circuit-*shape*: only the constraint matrix
//! and the variable counts enter the CRS ("assignments are ignored"), so
//! two circuits with identical shapes can share one proving key. Setup
//! dominates the baseline's cost (Table I measures it in seconds), and
//! callers used to regenerate it per use. [`CrsCache`] hashes the shape
//! — variable counts plus every constraint's linear-combination terms —
//! and hands back an `Arc<ProvingKey>`, so only the first proof of each
//! shape pays setup ("cold"); every later proof of that shape is
//! "prewarmed".
//!
//! [`CrsCache::get_or_setup`] is the one setup entry point wrapping
//! [`groth16::setup`]: the baseline tests and the table benches all
//! route through it (the benches with a fresh cache when they mean to
//! measure the cold setup deliberately).

use crate::groth16::{self, ProvingKey, SnarkError};
use crate::r1cs::{ConstraintSystem, LinearCombination, Variable};
use dragoon_crypto::keccak::Keccak256;
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Digest of everything [`groth16::setup`] reads from a constraint
/// system: the variable counts and, per constraint, each linear
/// combination's (variable, coefficient) terms.
pub fn shape_digest(cs: &ConstraintSystem) -> [u8; 32] {
    let mut h = Keccak256::new();
    h.update(b"dragoon/crs-shape/v1");
    fn absorb_u64(h: &mut Keccak256, v: u64) {
        h.update(&v.to_le_bytes());
    }
    absorb_u64(&mut h, cs.num_public() as u64);
    absorb_u64(&mut h, cs.num_variables() as u64);
    absorb_u64(&mut h, cs.num_constraints() as u64);
    let absorb_lc = |h: &mut Keccak256, lc: &LinearCombination| {
        absorb_u64(h, lc.0.len() as u64);
        for (v, coeff) in &lc.0 {
            let (tag, index) = match v {
                Variable::One => (0u64, 0u64),
                Variable::Public(i) => (1, *i as u64),
                Variable::Aux(i) => (2, *i as u64),
            };
            absorb_u64(h, tag);
            absorb_u64(h, index);
            for limb in coeff.to_plain_limbs() {
                absorb_u64(h, limb);
            }
        }
    };
    for con in &cs.constraints {
        absorb_lc(&mut h, &con.a);
        absorb_lc(&mut h, &con.b);
        absorb_lc(&mut h, &con.c);
    }
    h.finalize()
}

/// Counters for the cold-vs-prewarmed differential.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrsCacheStats {
    /// Lookups that found a key.
    pub hits: u64,
    /// Cold setups actually run (one per distinct shape).
    pub cold_setups: u64,
}

/// A cache of proving keys keyed by circuit-shape digest.
pub struct CrsCache {
    keys: Mutex<HashMap<[u8; 32], Arc<ProvingKey>>>,
    stats: Mutex<CrsCacheStats>,
}

impl CrsCache {
    /// An empty (cold) cache.
    pub fn new() -> Self {
        Self {
            keys: Mutex::new(HashMap::new()),
            stats: Mutex::new(CrsCacheStats::default()),
        }
    }

    /// The proving key for the shape of `cs`, running [`groth16::setup`]
    /// only on the first request of each shape. The setup (and the rng
    /// draws it makes) happens under the cache lock, so concurrent first
    /// requests of one shape run setup exactly once.
    pub fn get_or_setup<R: Rng + ?Sized>(
        &self,
        cs: &ConstraintSystem,
        rng: &mut R,
    ) -> Result<Arc<ProvingKey>, SnarkError> {
        let digest = shape_digest(cs);
        let mut keys = self.keys.lock().expect("crs cache poisoned");
        if let Some(pk) = keys.get(&digest) {
            self.stats.lock().expect("crs stats poisoned").hits += 1;
            return Ok(Arc::clone(pk));
        }
        let pk = Arc::new(groth16::setup(cs, rng)?);
        self.stats.lock().expect("crs stats poisoned").cold_setups += 1;
        keys.insert(digest, Arc::clone(&pk));
        Ok(pk)
    }

    /// Current counters.
    pub fn stats(&self) -> CrsCacheStats {
        *self.stats.lock().expect("crs stats poisoned")
    }
}

impl Default for CrsCache {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide shared cache (used by the baseline test suite; the
/// table benches build their own cold caches so setup time stays
/// measurable).
pub fn shared_cache() -> &'static CrsCache {
    static CACHE: OnceLock<CrsCache> = OnceLock::new();
    CACHE.get_or_init(CrsCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragoon_crypto::Fr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cs(coeff: u64) -> ConstraintSystem {
        // One public input x, one aux w, constraint coeff·x * w = x.
        let mut cs = ConstraintSystem::new();
        let x = cs.alloc_public(Fr::from_u64(2));
        let w = cs.alloc_aux(Fr::from_u64(1));
        cs.enforce(
            LinearCombination::from_var(x).scale(Fr::from_u64(coeff)),
            LinearCombination::from_var(w),
            LinearCombination::from_var(x).scale(Fr::from_u64(coeff)),
        );
        cs
    }

    #[test]
    fn same_shape_hits_different_shape_misses() {
        let mut rng = StdRng::seed_from_u64(0xc45);
        let cache = CrsCache::new();
        let pk1 = cache.get_or_setup(&tiny_cs(3), &mut rng).unwrap();
        let pk2 = cache.get_or_setup(&tiny_cs(3), &mut rng).unwrap();
        assert!(Arc::ptr_eq(&pk1, &pk2), "same shape shares the CRS");
        cache.get_or_setup(&tiny_cs(5), &mut rng).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.cold_setups), (1, 2));
    }

    #[test]
    fn digest_ignores_assignments() {
        let mut a = tiny_cs(3);
        let b = tiny_cs(3);
        a.public_inputs[0] = Fr::from_u64(9);
        a.aux[0] = Fr::from_u64(7);
        assert_eq!(shape_digest(&a), shape_digest(&b));
    }

    #[test]
    fn cached_key_proves_and_verifies() {
        let mut rng = StdRng::seed_from_u64(0xc46);
        let cache = CrsCache::new();
        let cs = tiny_cs(1);
        let pk = cache.get_or_setup(&cs, &mut rng).unwrap();
        let proof = groth16::prove(&pk, &cs, &mut rng).unwrap();
        assert!(groth16::verify(&pk.vk, &proof, &cs.public_inputs).unwrap());
    }
}
