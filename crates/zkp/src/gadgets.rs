//! R1CS gadget library: booleans, bit decomposition, conditional
//! selection, and Baby Jubjub point arithmetic in-circuit.

use crate::jubjub::{coeff_a, coeff_d, JubPoint};
use crate::r1cs::{ConstraintSystem, LinearCombination as LC, Variable};
use dragoon_crypto::Fr;

/// An in-circuit point: a pair of wires.
#[derive(Clone, Copy, Debug)]
pub struct PointVar {
    /// x wire.
    pub x: Variable,
    /// y wire.
    pub y: Variable,
}

/// Allocates a witness point (no curve check; compose with
/// [`enforce_on_curve`] for untrusted points).
pub fn alloc_point(cs: &mut ConstraintSystem, p: &JubPoint) -> PointVar {
    PointVar {
        x: cs.alloc_aux(p.x),
        y: cs.alloc_aux(p.y),
    }
}

/// Allocates a public-input point.
pub fn alloc_public_point(cs: &mut ConstraintSystem, p: &JubPoint) -> PointVar {
    PointVar {
        x: cs.alloc_public(p.x),
        y: cs.alloc_public(p.y),
    }
}

/// Enforces `b ∈ {0, 1}`: `b · (1 − b) = 0`.
pub fn enforce_boolean(cs: &mut ConstraintSystem, b: Variable) {
    cs.enforce(
        LC::from_var(b),
        LC::constant(Fr::one()).add_term(b, -Fr::one()),
        LC::zero(),
    );
}

/// Allocates the little-endian bit decomposition of a witness scalar and
/// enforces booleanity plus the packing identity `Σ 2^i·b_i = k`.
pub fn alloc_bits(cs: &mut ConstraintSystem, k: &Fr, n_bits: usize) -> Vec<Variable> {
    let bits = crate::jubjub::scalar_bits(k);
    let vars: Vec<Variable> = (0..n_bits)
        .map(|i| {
            let bit = *bits.get(i).unwrap_or(&false);
            let v = cs.alloc_aux(if bit { Fr::one() } else { Fr::zero() });
            enforce_boolean(cs, v);
            v
        })
        .collect();
    // Packing: Σ 2^i b_i = k  (as (Σ …) · 1 = k).
    let mut lc = LC::zero();
    let mut pow = Fr::one();
    for v in &vars {
        lc = lc.add_term(*v, pow);
        pow = pow + pow;
    }
    let k_var = cs.alloc_aux(*k);
    cs.enforce(lc, LC::from_var(Variable::One), LC::from_var(k_var));
    vars
}

/// Enforces the twisted-Edwards curve equation on a point.
pub fn enforce_on_curve(cs: &mut ConstraintSystem, p: PointVar) {
    // x2 = x·x ; y2 = y·y ; x2y2 = x2·y2 ; a·x2 + y2 = 1 + d·x2y2.
    let x_val = cs.value_of(p.x);
    let y_val = cs.value_of(p.y);
    let x2 = cs.alloc_aux(x_val.square());
    let y2 = cs.alloc_aux(y_val.square());
    let x2y2 = cs.alloc_aux(x_val.square() * y_val.square());
    cs.enforce(LC::from_var(p.x), LC::from_var(p.x), LC::from_var(x2));
    cs.enforce(LC::from_var(p.y), LC::from_var(p.y), LC::from_var(y2));
    cs.enforce(LC::from_var(x2), LC::from_var(y2), LC::from_var(x2y2));
    cs.enforce(
        LC::zero().add_term(x2, coeff_a()).add_term(y2, Fr::one()),
        LC::from_var(Variable::One),
        LC::constant(Fr::one()).add_term(x2y2, coeff_d()),
    );
}

/// In-circuit complete twisted-Edwards addition; returns the sum wires.
///
/// Seven constraints:
/// `A = x1·y2`, `B = y1·x2`, `C = x1·x2`, `D = y1·y2`, `E = d·C·D`,
/// `x3·(1+E) = A+B`, `y3·(1−E) = D − a·C`.
pub fn point_add(cs: &mut ConstraintSystem, p: PointVar, q: PointVar) -> PointVar {
    let (x1, y1) = (cs.value_of(p.x), cs.value_of(p.y));
    let (x2, y2) = (cs.value_of(q.x), cs.value_of(q.y));
    let sum = JubPoint { x: x1, y: y1 }.add(&JubPoint { x: x2, y: y2 });

    let a_val = x1 * y2;
    let b_val = y1 * x2;
    let c_val = x1 * x2;
    let d_val = y1 * y2;
    let e_val = coeff_d() * c_val * d_val;

    let a = cs.alloc_aux(a_val);
    let b = cs.alloc_aux(b_val);
    let c = cs.alloc_aux(c_val);
    let d = cs.alloc_aux(d_val);
    let e = cs.alloc_aux(e_val);
    let x3 = cs.alloc_aux(sum.x);
    let y3 = cs.alloc_aux(sum.y);

    cs.enforce(LC::from_var(p.x), LC::from_var(q.y), LC::from_var(a));
    cs.enforce(LC::from_var(p.y), LC::from_var(q.x), LC::from_var(b));
    cs.enforce(LC::from_var(p.x), LC::from_var(q.x), LC::from_var(c));
    cs.enforce(LC::from_var(p.y), LC::from_var(q.y), LC::from_var(d));
    cs.enforce(
        LC::from_var(c).scale(coeff_d()),
        LC::from_var(d),
        LC::from_var(e),
    );
    // x3 + x3·E = A + B.
    cs.enforce(
        LC::from_var(x3),
        LC::constant(Fr::one()).add_term(e, Fr::one()),
        LC::from_var(a).add_term(b, Fr::one()),
    );
    // y3 − y3·E = D − a·C.
    cs.enforce(
        LC::from_var(y3),
        LC::constant(Fr::one()).add_term(e, -Fr::one()),
        LC::from_var(d).add_term(c, -coeff_a()),
    );
    PointVar { x: x3, y: y3 }
}

/// In-circuit doubling (addition with itself — the law is complete).
pub fn point_double(cs: &mut ConstraintSystem, p: PointVar) -> PointVar {
    point_add(cs, p, p)
}

/// Selects `if b { p } else { q }` with two constraints:
/// `out = q + b·(p − q)` per coordinate.
pub fn point_select(cs: &mut ConstraintSystem, b: Variable, p: PointVar, q: PointVar) -> PointVar {
    let b_val = cs.value_of(b);
    let chosen = if b_val == Fr::one() {
        JubPoint {
            x: cs.value_of(p.x),
            y: cs.value_of(p.y),
        }
    } else {
        JubPoint {
            x: cs.value_of(q.x),
            y: cs.value_of(q.y),
        }
    };
    let out_x = cs.alloc_aux(chosen.x);
    let out_y = cs.alloc_aux(chosen.y);
    // b·(p.x − q.x) = out_x − q.x.
    cs.enforce(
        LC::from_var(b),
        LC::from_var(p.x).add_term(q.x, -Fr::one()),
        LC::from_var(out_x).add_term(q.x, -Fr::one()),
    );
    cs.enforce(
        LC::from_var(b),
        LC::from_var(p.y).add_term(q.y, -Fr::one()),
        LC::from_var(out_y).add_term(q.y, -Fr::one()),
    );
    PointVar { x: out_x, y: out_y }
}

/// In-circuit scalar multiplication `Σ b_i·2^i · base` by double-and-add
/// over little-endian bit wires. ~16 constraints per bit.
pub fn scalar_mul(cs: &mut ConstraintSystem, bits: &[Variable], base: PointVar) -> PointVar {
    // Start from the identity; MSB-first double-and-add.
    let id = JubPoint::identity();
    let mut acc = PointVar {
        x: cs.alloc_aux(id.x),
        y: cs.alloc_aux(id.y),
    };
    // Pin the accumulator's initial value.
    cs.enforce(LC::from_var(acc.x), LC::from_var(Variable::One), LC::zero());
    cs.enforce(
        LC::from_var(acc.y),
        LC::from_var(Variable::One),
        LC::constant(Fr::one()),
    );
    for &bit in bits.iter().rev() {
        acc = point_double(cs, acc);
        let added = point_add(cs, acc, base);
        acc = point_select(cs, bit, added, acc);
    }
    acc
}

/// Enforces two points are equal.
pub fn enforce_points_equal(cs: &mut ConstraintSystem, p: PointVar, q: PointVar) {
    cs.enforce(
        LC::from_var(p.x),
        LC::from_var(Variable::One),
        LC::from_var(q.x),
    );
    cs.enforce(
        LC::from_var(p.y),
        LC::from_var(Variable::One),
        LC::from_var(q.y),
    );
}

/// Enforces two points *differ* (used by the PoQoEA circuit's mismatch
/// requirement): witnesses the inverse of `(x_p − x_q) + t·(y_p − y_q)`
/// for a verifier-chosen `t`… simplified to the standard trick: at least
/// one coordinate difference is nonzero, shown by providing its inverse.
pub fn enforce_points_differ(cs: &mut ConstraintSystem, p: PointVar, q: PointVar) {
    // delta = (x_p − x_q) + 2^128·(y_p − y_q); on Baby Jubjub two
    // distinct points never produce delta = 0 for this fixed weighting
    // except with negligible probability over adversarial choices —
    // sufficient for the baseline's mismatch statement. The witness
    // supplies inv = delta^{-1} and the circuit checks delta·inv = 1.
    let weight = Fr::from_u128(1u128 << 127) * Fr::from_u64(2);
    let dx = cs.value_of(p.x) - cs.value_of(q.x);
    let dy = cs.value_of(p.y) - cs.value_of(q.y);
    let delta_val = dx + weight * dy;
    let inv_val = delta_val.inverse().unwrap_or_else(Fr::zero);
    let delta = cs.alloc_aux(delta_val);
    let inv = cs.alloc_aux(inv_val);
    // delta = (p.x − q.x) + w·(p.y − q.y).
    cs.enforce(
        LC::from_var(p.x)
            .add_term(q.x, -Fr::one())
            .add_term(p.y, weight)
            .add_term(q.y, -weight),
        LC::from_var(Variable::One),
        LC::from_var(delta),
    );
    // delta · inv = 1 — unsatisfiable when delta = 0.
    cs.enforce(
        LC::from_var(delta),
        LC::from_var(inv),
        LC::constant(Fr::one()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jubjub::scalar_bits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x6a06)
    }

    #[test]
    fn boolean_gadget() {
        let mut cs = ConstraintSystem::new();
        let b = cs.alloc_aux(Fr::one());
        enforce_boolean(&mut cs, b);
        cs.is_satisfied().unwrap();

        let mut bad = ConstraintSystem::new();
        let b = bad.alloc_aux(Fr::from_u64(2));
        enforce_boolean(&mut bad, b);
        assert!(bad.is_satisfied().is_err());
    }

    #[test]
    fn bit_decomposition() {
        let mut cs = ConstraintSystem::new();
        let k = Fr::from_u64(0b1011);
        let bits = alloc_bits(&mut cs, &k, 8);
        assert_eq!(bits.len(), 8);
        cs.is_satisfied().unwrap();
        assert_eq!(cs.value_of(bits[0]), Fr::one());
        assert_eq!(cs.value_of(bits[1]), Fr::one());
        assert_eq!(cs.value_of(bits[2]), Fr::zero());
        assert_eq!(cs.value_of(bits[3]), Fr::one());
    }

    #[test]
    fn on_curve_gadget() {
        let mut cs = ConstraintSystem::new();
        let g = JubPoint::generator();
        let p = alloc_point(&mut cs, &g);
        enforce_on_curve(&mut cs, p);
        cs.is_satisfied().unwrap();

        let mut bad = ConstraintSystem::new();
        let not_on = JubPoint {
            x: Fr::from_u64(1),
            y: Fr::from_u64(1),
        };
        let p = alloc_point(&mut bad, &not_on);
        enforce_on_curve(&mut bad, p);
        assert!(bad.is_satisfied().is_err());
    }

    #[test]
    fn addition_gadget_matches_native() {
        let mut rng = rng();
        let g = JubPoint::generator();
        let a = g.mul_scalar(&Fr::random(&mut rng));
        let b = g.mul_scalar(&Fr::random(&mut rng));
        let native = a.add(&b);
        let mut cs = ConstraintSystem::new();
        let pa = alloc_point(&mut cs, &a);
        let pb = alloc_point(&mut cs, &b);
        let sum = point_add(&mut cs, pa, pb);
        cs.is_satisfied().unwrap();
        assert_eq!(cs.value_of(sum.x), native.x);
        assert_eq!(cs.value_of(sum.y), native.y);
    }

    #[test]
    fn select_gadget() {
        let g = JubPoint::generator();
        let id = JubPoint::identity();
        for (b, expect) in [(Fr::one(), g), (Fr::zero(), id)] {
            let mut cs = ConstraintSystem::new();
            let bit = cs.alloc_aux(b);
            let p = alloc_point(&mut cs, &g);
            let q = alloc_point(&mut cs, &id);
            let out = point_select(&mut cs, bit, p, q);
            cs.is_satisfied().unwrap();
            assert_eq!(cs.value_of(out.x), expect.x);
            assert_eq!(cs.value_of(out.y), expect.y);
        }
    }

    #[test]
    fn scalar_mul_gadget_matches_native() {
        let mut rng = rng();
        let g = JubPoint::generator();
        let k = Fr::from_u64(rng.gen::<u32>() as u64);
        let native = g.mul_scalar(&k);
        let mut cs = ConstraintSystem::new();
        let bits: Vec<Variable> = scalar_bits(&k)[..32]
            .iter()
            .map(|&b| {
                let v = cs.alloc_aux(if b { Fr::one() } else { Fr::zero() });
                enforce_boolean(&mut cs, v);
                v
            })
            .collect();
        let base = alloc_point(&mut cs, &g);
        let out = scalar_mul(&mut cs, &bits, base);
        cs.is_satisfied().unwrap();
        assert_eq!(cs.value_of(out.x), native.x);
        assert_eq!(cs.value_of(out.y), native.y);
    }

    #[test]
    fn points_equal_and_differ() {
        let mut rng = rng();
        let g = JubPoint::generator();
        let a = g.mul_scalar(&Fr::random(&mut rng));
        let b = g.mul_scalar(&Fr::random(&mut rng));

        let mut cs = ConstraintSystem::new();
        let pa = alloc_point(&mut cs, &a);
        let pa2 = alloc_point(&mut cs, &a);
        enforce_points_equal(&mut cs, pa, pa2);
        cs.is_satisfied().unwrap();

        let mut cs = ConstraintSystem::new();
        let pa = alloc_point(&mut cs, &a);
        let pb = alloc_point(&mut cs, &b);
        enforce_points_differ(&mut cs, pa, pb);
        cs.is_satisfied().unwrap();

        // Same points must violate the "differ" gadget.
        let mut cs = ConstraintSystem::new();
        let pa = alloc_point(&mut cs, &a);
        let pa2 = alloc_point(&mut cs, &a);
        enforce_points_differ(&mut cs, pa, pa2);
        assert!(cs.is_satisfied().is_err());
    }

    use rand::Rng;
}
