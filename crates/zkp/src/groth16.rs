//! Groth16 over BN-254 — the generic zk-SNARK baseline of Tables I & II.
//!
//! This is the real pipeline: R1CS → QAP (via NTT over the scalar
//! field) → pairing-based setup / prove / verify, built entirely on the
//! curve and pairing in `dragoon-crypto`. The paper's point is precisely
//! that this machinery — even with its famously succinct proofs — costs
//! orders of magnitude more to *prove* than Dragoon's special-purpose
//! construction; keeping the baseline genuine keeps the comparison
//! honest.

use crate::ntt::Domain;
use crate::r1cs::ConstraintSystem;
use dragoon_crypto::g1::{msm, G1Affine, G1Projective};
use dragoon_crypto::g2::{G2Affine, G2Projective};
use dragoon_crypto::pairing::{multi_pairing, pairing};
use dragoon_crypto::Fr;
use rand::Rng;

/// The Groth16 verifying key.
#[derive(Clone, Debug)]
pub struct VerifyingKey {
    /// `[α]₁`.
    pub alpha_g1: G1Affine,
    /// `[β]₂`.
    pub beta_g2: G2Affine,
    /// `[γ]₂`.
    pub gamma_g2: G2Affine,
    /// `[δ]₂`.
    pub delta_g2: G2Affine,
    /// `[(β·A_i(τ) + α·B_i(τ) + C_i(τ))/γ]₁` for the one-wire and every
    /// public input.
    pub ic: Vec<G1Affine>,
}

/// The Groth16 proving key (includes the verifying key).
#[derive(Clone, Debug)]
pub struct ProvingKey {
    /// The verifying key.
    pub vk: VerifyingKey,
    /// `[α]₁` (same as vk, kept for locality).
    pub alpha_g1: G1Affine,
    /// `[β]₁`.
    pub beta_g1: G1Affine,
    /// `[δ]₁`.
    pub delta_g1: G1Affine,
    /// `[A_i(τ)]₁` for every variable.
    pub a_query: Vec<G1Affine>,
    /// `[B_i(τ)]₁` for every variable.
    pub b_g1_query: Vec<G1Affine>,
    /// `[B_i(τ)]₂` for every variable.
    pub b_g2_query: Vec<G2Affine>,
    /// `[(β·A_i(τ) + α·B_i(τ) + C_i(τ))/δ]₁` for every auxiliary
    /// variable.
    pub l_query: Vec<G1Affine>,
    /// `[τ^i·Z(τ)/δ]₁` for `i ∈ [0, n-1)`.
    pub h_query: Vec<G1Affine>,
    /// The evaluation-domain size.
    pub domain_size: usize,
}

impl ProvingKey {
    /// Approximate in-memory size of the key in bytes — the dominant
    /// term of the prover's peak memory (Table I's memory column).
    pub fn size_bytes(&self) -> usize {
        let g1 = 64usize;
        let g2 = 128usize;
        (self.a_query.len() + self.b_g1_query.len() + self.l_query.len() + self.h_query.len() + 3)
            * g1
            + (self.b_g2_query.len() + 3) * g2
            + self.vk.ic.len() * g1
    }
}

/// A Groth16 proof: 2 G1 points + 1 G2 point (the famous ~128 bytes
/// compressed; 256 uncompressed here).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Proof {
    /// `[A]₁`.
    pub a: G1Affine,
    /// `[B]₂`.
    pub b: G2Affine,
    /// `[C]₁`.
    pub c: G1Affine,
}

/// Errors from the Groth16 pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnarkError {
    /// The witness does not satisfy the constraint system.
    Unsatisfied(usize),
    /// The circuit is too large for the NTT domain.
    CircuitTooLarge,
    /// Public-input count differs from the key.
    PublicInputMismatch {
        /// Expected (from the key).
        expected: usize,
        /// Provided.
        got: usize,
    },
}

impl std::fmt::Display for SnarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnarkError::Unsatisfied(i) => write!(f, "constraint {i} unsatisfied"),
            SnarkError::CircuitTooLarge => write!(f, "circuit exceeds 2^28 constraints"),
            SnarkError::PublicInputMismatch { expected, got } => {
                write!(f, "expected {expected} public inputs, got {got}")
            }
        }
    }
}

impl std::error::Error for SnarkError {}

/// Evaluates, for every variable, the QAP polynomials `A_i(τ)`, `B_i(τ)`,
/// `C_i(τ)` given the Lagrange values `L_j(τ)`.
fn qap_evaluations(cs: &ConstraintSystem, lagrange: &[Fr]) -> (Vec<Fr>, Vec<Fr>, Vec<Fr>) {
    let m = cs.num_variables();
    let mut a = vec![Fr::zero(); m];
    let mut b = vec![Fr::zero(); m];
    let mut c = vec![Fr::zero(); m];
    for (j, con) in cs.constraints.iter().enumerate() {
        let l = lagrange[j];
        for (v, coeff) in &con.a.0 {
            a[cs.dense_index(*v)] += *coeff * l;
        }
        for (v, coeff) in &con.b.0 {
            b[cs.dense_index(*v)] += *coeff * l;
        }
        for (v, coeff) in &con.c.0 {
            c[cs.dense_index(*v)] += *coeff * l;
        }
    }
    (a, b, c)
}

/// The trusted setup: samples toxic waste and produces the key pair.
///
/// Only the *shape* of `cs` matters (constraints and variable counts);
/// assignments are ignored.
pub fn setup<R: Rng + ?Sized>(
    cs: &ConstraintSystem,
    rng: &mut R,
) -> Result<ProvingKey, SnarkError> {
    let domain = Domain::new(cs.num_constraints().max(2)).ok_or(SnarkError::CircuitTooLarge)?;
    let (tau, alpha, beta, gamma, delta) = loop {
        let tau = Fr::random(rng);
        // τ must avoid the domain (Lagrange denominators) — negligible
        // probability, but cheap to enforce.
        if domain.vanishing_at(&tau).is_zero() {
            continue;
        }
        break (
            tau,
            Fr::random(rng),
            Fr::random(rng),
            Fr::random(rng),
            Fr::random(rng),
        );
    };
    let gamma_inv = gamma.inverse().expect("nonzero");
    let delta_inv = delta.inverse().expect("nonzero");

    let lagrange = domain.lagrange_at(&tau);
    let (a_tau, b_tau, c_tau) = qap_evaluations(cs, &lagrange);

    let g1 = G1Projective::generator();
    let g2 = G2Projective::generator();
    let m = cs.num_variables();
    let l = cs.num_public(); // dense public indices are 0..=l

    let a_query: Vec<G1Affine> = a_tau.iter().map(|v| (g1 * *v).to_affine()).collect();
    let b_g1_query: Vec<G1Affine> = b_tau.iter().map(|v| (g1 * *v).to_affine()).collect();
    let b_g2_query: Vec<G2Affine> = b_tau.iter().map(|v| (g2 * *v).to_affine()).collect();

    let mut ic = Vec::with_capacity(l + 1);
    for i in 0..=l {
        let v = (beta * a_tau[i] + alpha * b_tau[i] + c_tau[i]) * gamma_inv;
        ic.push((g1 * v).to_affine());
    }
    let mut l_query = Vec::with_capacity(m - l - 1);
    for i in (l + 1)..m {
        let v = (beta * a_tau[i] + alpha * b_tau[i] + c_tau[i]) * delta_inv;
        l_query.push((g1 * v).to_affine());
    }

    // [τ^i · Z(τ) / δ]₁.
    let z_tau = domain.vanishing_at(&tau);
    let mut h_query = Vec::with_capacity(domain.n - 1);
    let mut tau_pow = Fr::one();
    for _ in 0..domain.n - 1 {
        h_query.push((g1 * (tau_pow * z_tau * delta_inv)).to_affine());
        tau_pow *= tau;
    }

    let vk = VerifyingKey {
        alpha_g1: (g1 * alpha).to_affine(),
        beta_g2: (g2 * beta).to_affine(),
        gamma_g2: (g2 * gamma).to_affine(),
        delta_g2: (g2 * delta).to_affine(),
        ic,
    };
    Ok(ProvingKey {
        alpha_g1: vk.alpha_g1,
        beta_g1: (g1 * beta).to_affine(),
        delta_g1: (g1 * delta).to_affine(),
        a_query,
        b_g1_query,
        b_g2_query,
        l_query,
        h_query,
        domain_size: domain.n,
        vk,
    })
}

/// Computes the coefficients of `h(x) = (A(x)·B(x) − C(x)) / Z(x)` from
/// the witness, via coset NTTs.
fn compute_h(cs: &ConstraintSystem, domain: &Domain) -> Vec<Fr> {
    let w = cs.full_assignment();
    let mut az = vec![Fr::zero(); domain.n];
    let mut bz = vec![Fr::zero(); domain.n];
    let mut cz = vec![Fr::zero(); domain.n];
    for (j, con) in cs.constraints.iter().enumerate() {
        az[j] = con
            .a
            .0
            .iter()
            .fold(Fr::zero(), |acc, (v, c)| acc + w[cs.dense_index(*v)] * *c);
        bz[j] = con
            .b
            .0
            .iter()
            .fold(Fr::zero(), |acc, (v, c)| acc + w[cs.dense_index(*v)] * *c);
        cz[j] = con
            .c
            .0
            .iter()
            .fold(Fr::zero(), |acc, (v, c)| acc + w[cs.dense_index(*v)] * *c);
    }
    // Interpolate, move to the coset, multiply pointwise, divide by the
    // (constant) vanishing value, and come back.
    domain.intt(&mut az);
    domain.intt(&mut bz);
    domain.intt(&mut cz);
    domain.coset_ntt(&mut az);
    domain.coset_ntt(&mut bz);
    domain.coset_ntt(&mut cz);
    let z_inv = domain
        .vanishing_on_coset()
        .inverse()
        .expect("coset avoids the domain");
    let mut h: Vec<Fr> = az
        .iter()
        .zip(&bz)
        .zip(&cz)
        .map(|((a, b), c)| (*a * *b - *c) * z_inv)
        .collect();
    domain.coset_intt(&mut h);
    h.truncate(domain.n - 1);
    h
}

/// The G1 multi-scalar-multiplication backend a prover run uses.
///
/// [`prove`] fixes it to the deliberately naive [`msm`] (the
/// libsnark-style baseline Table I measures against);
/// [`prove_with_msm`] lets the bench's "optimized baseline" column swap
/// in `dragoon_crypto::g1::msm_pippenger` without touching the
/// paper-faithful path.
pub type G1Msm = fn(&[G1Affine], &[Fr]) -> G1Projective;

/// Produces a proof for a satisfied constraint system using the naive
/// per-point MSM (the paper-faithful baseline).
pub fn prove<R: Rng + ?Sized>(
    pk: &ProvingKey,
    cs: &ConstraintSystem,
    rng: &mut R,
) -> Result<Proof, SnarkError> {
    prove_with_msm(pk, cs, rng, msm)
}

/// Produces a proof with an explicit G1 MSM backend. The proof is
/// identical whichever backend computes the sums — only the prover's
/// running time changes.
pub fn prove_with_msm<R: Rng + ?Sized>(
    pk: &ProvingKey,
    cs: &ConstraintSystem,
    rng: &mut R,
    g1_msm: G1Msm,
) -> Result<Proof, SnarkError> {
    cs.is_satisfied()
        .map_err(|e| SnarkError::Unsatisfied(e.index))?;
    let domain = Domain::new(cs.num_constraints().max(2)).ok_or(SnarkError::CircuitTooLarge)?;
    assert_eq!(domain.n, pk.domain_size, "key/circuit domain mismatch");
    let w = cs.full_assignment();
    let r = Fr::random(rng);
    let s = Fr::random(rng);

    // A = α + Σ w_i·A_i(τ) + r·δ.
    let a_acc = g1_msm(&pk.a_query, &w);
    let a = (a_acc + pk.alpha_g1.to_projective() + pk.delta_g1 * r).to_affine();

    // B (G2) = β + Σ w_i·B_i(τ) + s·δ ; B1 is the G1 copy.
    let b_acc_g2 = dragoon_crypto::g2::msm_g2(&pk.b_g2_query, &w);
    let b = (b_acc_g2 + pk.vk.beta_g2.to_projective() + pk.vk.delta_g2 * s).to_affine();
    let b_acc_g1 = g1_msm(&pk.b_g1_query, &w);
    let b1 = (b_acc_g1 + pk.beta_g1.to_projective() + pk.delta_g1 * s).to_affine();

    // C = Σ_aux w_i·L_i + Σ h_i·H_i + s·A + r·B1 − r·s·δ.
    let aux = &w[1 + cs.num_public()..];
    let l_acc = g1_msm(&pk.l_query, aux);
    let h = compute_h(cs, &domain);
    let h_acc = g1_msm(&pk.h_query[..h.len()], &h);
    let c = (l_acc + h_acc + a * s + b1 * r - pk.delta_g1 * (r * s)).to_affine();

    Ok(Proof { a, b, c })
}

/// Verifies a proof against public inputs (excluding the implicit
/// one-wire).
pub fn verify(vk: &VerifyingKey, proof: &Proof, public_inputs: &[Fr]) -> Result<bool, SnarkError> {
    if public_inputs.len() + 1 != vk.ic.len() {
        return Err(SnarkError::PublicInputMismatch {
            expected: vk.ic.len() - 1,
            got: public_inputs.len(),
        });
    }
    let mut acc = vk.ic[0].to_projective();
    for (x, icp) in public_inputs.iter().zip(&vk.ic[1..]) {
        acc += *icp * *x;
    }
    let ic_sum = acc.to_affine();
    // e(−A, B) · e(α, β) · e(IC, γ) · e(C, δ) == 1.
    let neg_a = -proof.a;
    let res = multi_pairing(&[
        (neg_a, proof.b),
        (vk.alpha_g1, vk.beta_g2),
        (ic_sum, vk.gamma_g2),
        (proof.c, vk.delta_g2),
    ]);
    Ok(res.is_one())
}

/// Single-pairing reference verifier (slower; used in tests to
/// cross-check the product form).
pub fn verify_reference(vk: &VerifyingKey, proof: &Proof, public_inputs: &[Fr]) -> bool {
    let mut acc = vk.ic[0].to_projective();
    for (x, icp) in public_inputs.iter().zip(&vk.ic[1..]) {
        acc += *icp * *x;
    }
    let lhs = pairing(&proof.a, &proof.b);
    let rhs = pairing(&vk.alpha_g1, &vk.beta_g2)
        * pairing(&acc.to_affine(), &vk.gamma_g2)
        * pairing(&proof.c, &vk.delta_g2);
    lhs == rhs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r1cs::LinearCombination as LC;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x62f7)
    }

    /// x·y = out (public out), plus a cubing chain to get a few more
    /// constraints: t = x·x, u = t·x (x³ public).
    fn demo_circuit(x: u64, y: u64) -> ConstraintSystem {
        let mut cs = ConstraintSystem::new();
        let xf = Fr::from_u64(x);
        let yf = Fr::from_u64(y);
        let out = cs.alloc_public(xf * yf);
        let cube = cs.alloc_public(xf * xf * xf);
        let xv = cs.alloc_aux(xf);
        let yv = cs.alloc_aux(yf);
        let t = cs.alloc_aux(xf * xf);
        cs.enforce(LC::from_var(xv), LC::from_var(yv), LC::from_var(out));
        cs.enforce(LC::from_var(xv), LC::from_var(xv), LC::from_var(t));
        cs.enforce(LC::from_var(t), LC::from_var(xv), LC::from_var(cube));
        cs
    }

    #[test]
    fn prove_and_verify() {
        let mut rng = rng();
        let cs = demo_circuit(5, 7);
        let pk = setup(&cs, &mut rng).unwrap();
        let proof = prove(&pk, &cs, &mut rng).unwrap();
        let publics = vec![Fr::from_u64(35), Fr::from_u64(125)];
        assert!(verify(&pk.vk, &proof, &publics).unwrap());
        assert!(verify_reference(&pk.vk, &proof, &publics));
    }

    #[test]
    fn pippenger_msm_backend_produces_identical_proofs() {
        let mut rng = rng();
        let cs = demo_circuit(5, 7);
        let pk = setup(&cs, &mut rng).unwrap();
        // Identical RNG state ⇒ identical (r, s) blinding ⇒ the proof
        // must be byte-identical whichever MSM backend computes it.
        let mut rng_a = rng.clone();
        let mut rng_b = rng.clone();
        let naive = prove_with_msm(&pk, &cs, &mut rng_a, msm).unwrap();
        let pip = prove_with_msm(&pk, &cs, &mut rng_b, dragoon_crypto::g1::msm_pippenger).unwrap();
        assert_eq!(naive.a, pip.a);
        assert_eq!(naive.b, pip.b);
        assert_eq!(naive.c, pip.c);
        let publics = vec![Fr::from_u64(35), Fr::from_u64(125)];
        assert!(verify(&pk.vk, &pip, &publics).unwrap());
    }

    #[test]
    fn wrong_public_input_rejected() {
        let mut rng = rng();
        let cs = demo_circuit(5, 7);
        let pk = setup(&cs, &mut rng).unwrap();
        let proof = prove(&pk, &cs, &mut rng).unwrap();
        assert!(!verify(&pk.vk, &proof, &[Fr::from_u64(36), Fr::from_u64(125)]).unwrap());
        assert!(!verify(&pk.vk, &proof, &[Fr::from_u64(35), Fr::from_u64(126)]).unwrap());
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut rng = rng();
        let cs = demo_circuit(5, 7);
        let pk = setup(&cs, &mut rng).unwrap();
        let proof = prove(&pk, &cs, &mut rng).unwrap();
        let publics = vec![Fr::from_u64(35), Fr::from_u64(125)];
        let mut bad = proof;
        bad.a = G1Affine::generator();
        assert!(!verify(&pk.vk, &bad, &publics).unwrap());
        let mut bad = proof;
        bad.c = G1Affine::generator();
        assert!(!verify(&pk.vk, &bad, &publics).unwrap());
    }

    #[test]
    fn public_input_count_checked() {
        let mut rng = rng();
        let cs = demo_circuit(5, 7);
        let pk = setup(&cs, &mut rng).unwrap();
        let proof = prove(&pk, &cs, &mut rng).unwrap();
        assert!(matches!(
            verify(&pk.vk, &proof, &[Fr::from_u64(35)]),
            Err(SnarkError::PublicInputMismatch { .. })
        ));
    }

    #[test]
    fn unsatisfied_witness_refuses_to_prove() {
        let mut rng = rng();
        let mut cs = demo_circuit(5, 7);
        // Corrupt the witness.
        cs.aux[0] = Fr::from_u64(6);
        let pk = setup(&cs, &mut rng).unwrap();
        assert!(matches!(
            prove(&pk, &cs, &mut rng),
            Err(SnarkError::Unsatisfied(_))
        ));
    }

    #[test]
    fn proofs_are_randomized() {
        let mut rng = rng();
        let cs = demo_circuit(5, 7);
        let pk = setup(&cs, &mut rng).unwrap();
        let p1 = prove(&pk, &cs, &mut rng).unwrap();
        let p2 = prove(&pk, &cs, &mut rng).unwrap();
        assert_ne!(p1, p2, "zero-knowledge requires fresh randomness");
        let publics = vec![Fr::from_u64(35), Fr::from_u64(125)];
        assert!(verify(&pk.vk, &p1, &publics).unwrap());
        assert!(verify(&pk.vk, &p2, &publics).unwrap());
    }

    #[test]
    fn different_witnesses_same_statement() {
        // 35 = 5·7 = 35·1: both witnesses prove the same instance (for
        // the first constraint; fix cube accordingly by using x=35,y=1).
        let mut rng = rng();
        let cs1 = demo_circuit(5, 7);
        let pk = setup(&cs1, &mut rng).unwrap();
        let proof = prove(&pk, &cs1, &mut rng).unwrap();
        assert!(verify(&pk.vk, &proof, &[Fr::from_u64(35), Fr::from_u64(125)]).unwrap());
    }

    #[test]
    fn key_size_estimate_positive() {
        let mut rng = rng();
        let cs = demo_circuit(2, 3);
        let pk = setup(&cs, &mut rng).unwrap();
        assert!(pk.size_bytes() > 1_000);
    }
}
