//! Baby Jubjub: the twisted Edwards curve embedded in the BN-254 scalar
//! field, `a·x² + y² = 1 + d·x²y²` over `Fr` with `a = 168700`,
//! `d = 168696`.
//!
//! Substitution note (DESIGN.md): the paper's generic-ZKP baseline proved
//! RSA-OAEP decryption inside a SNARK circuit. RSA bignum circuits and
//! embedded-curve ElGamal circuits play the same role — they make the
//! decryption relation expressible in R1CS at comparable (tens of
//! thousands of constraints) scale. Baby Jubjub is the standard
//! SNARK-friendly embedded curve for BN-254, so the baseline here proves
//! exponential-ElGamal decryption *over Baby Jubjub* in-circuit, keeping
//! the statement identical in spirit to the concrete VPKE while remaining
//! honest about generic-proof costs.
//!
//! Complete addition law (no exceptional cases for points in the prime
//! subgroup) — exactly why double-and-add is safe inside a circuit.

use dragoon_crypto::Fr;
use rand::Rng;

/// Curve coefficient `a`.
pub fn coeff_a() -> Fr {
    Fr::from_u64(168700)
}

/// Curve coefficient `d`.
pub fn coeff_d() -> Fr {
    Fr::from_u64(168696)
}

/// A point on Baby Jubjub in affine twisted-Edwards coordinates. The
/// identity is `(0, 1)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct JubPoint {
    /// x-coordinate.
    pub x: Fr,
    /// y-coordinate.
    pub y: Fr,
}

impl JubPoint {
    /// The group identity `(0, 1)`.
    pub fn identity() -> Self {
        Self {
            x: Fr::zero(),
            y: Fr::one(),
        }
    }

    /// The standard prime-subgroup generator (order-`l` point).
    pub fn generator() -> Self {
        let x = Fr::from_plain_limbs([
            0x2893f3f6bb957051,
            0x2ab8d8010534e0b6,
            0x4eacb2e09d6277c1,
            0x0bb77a6ad63e739b,
        ])
        .expect("generator constant");
        let y = Fr::from_plain_limbs([
            0x4b3c257a872d7d8b,
            0xfce0051fb9e13377,
            0x25572e1cd16bf9ed,
            0x25797203f7a0b249,
        ])
        .expect("generator constant");
        Self { x, y }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.x.is_zero() && self.y == Fr::one()
    }

    /// Checks the curve equation.
    pub fn is_on_curve(&self) -> bool {
        let x2 = self.x.square();
        let y2 = self.y.square();
        coeff_a() * x2 + y2 == Fr::one() + coeff_d() * x2 * y2
    }

    /// Complete twisted-Edwards addition.
    pub fn add(&self, other: &Self) -> Self {
        let (x1, y1, x2, y2) = (self.x, self.y, other.x, other.y);
        let x1y2 = x1 * y2;
        let y1x2 = y1 * x2;
        let x1x2 = x1 * x2;
        let y1y2 = y1 * y2;
        let dxxyy = coeff_d() * x1x2 * y1y2;
        let x3 = (x1y2 + y1x2)
            * (Fr::one() + dxxyy)
                .inverse()
                .expect("complete law: denominator nonzero");
        let y3 = (y1y2 - coeff_a() * x1x2)
            * (Fr::one() - dxxyy)
                .inverse()
                .expect("complete law: denominator nonzero");
        Self { x: x3, y: y3 }
    }

    /// Doubling (addition with itself; the law is complete).
    pub fn double(&self) -> Self {
        self.add(self)
    }

    /// Negation `(-x, y)`.
    pub fn neg(&self) -> Self {
        Self {
            x: -self.x,
            y: self.y,
        }
    }

    /// Scalar multiplication by the little-endian bits of `k`.
    pub fn mul_bits(&self, bits: &[bool]) -> Self {
        let mut acc = Self::identity();
        for &bit in bits.iter().rev() {
            acc = acc.double();
            if bit {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Scalar multiplication by a field element (using its canonical
    /// 254-bit representation).
    pub fn mul_scalar(&self, k: &Fr) -> Self {
        self.mul_bits(&scalar_bits(k))
    }
}

/// The canonical little-endian bit decomposition of a scalar (254 bits).
pub fn scalar_bits(k: &Fr) -> Vec<bool> {
    let limbs = k.to_plain_limbs();
    (0..254)
        .map(|i| (limbs[i / 64] >> (i % 64)) & 1 == 1)
        .collect()
}

/// An exponential-ElGamal key pair over Baby Jubjub (the baseline's
/// encryption scheme, mirroring `dragoon_crypto::elgamal` over G1).
#[derive(Clone, Copy, Debug)]
pub struct JubKeyPair {
    /// The secret key.
    pub sk: Fr,
    /// The public key `sk·G`.
    pub pk: JubPoint,
}

impl JubKeyPair {
    /// Samples a key pair. The secret is drawn from `[0, 2^250)` so it
    /// (a) lies below the prime-subgroup order `l` (a 251-bit prime) and
    /// (b) fits the circuit's 251-bit key decomposition.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let limbs = [
            rng.gen::<u64>(),
            rng.gen::<u64>(),
            rng.gen::<u64>(),
            rng.gen::<u64>() & (u64::MAX >> 14),
        ];
        let sk = Fr::from_plain_limbs(limbs).expect("250-bit value is reduced");
        Self {
            sk,
            pk: JubPoint::generator().mul_scalar(&sk),
        }
    }
}

/// An ElGamal ciphertext over Baby Jubjub: `(ρ·G, m·G + ρ·PK)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JubCiphertext {
    /// `c1 = ρ·G`.
    pub c1: JubPoint,
    /// `c2 = m·G + ρ·PK`.
    pub c2: JubPoint,
}

/// Encrypts a small message.
pub fn jub_encrypt<R: Rng + ?Sized>(pk: &JubPoint, m: u64, rng: &mut R) -> JubCiphertext {
    let rho = Fr::random(rng);
    let g = JubPoint::generator();
    JubCiphertext {
        c1: g.mul_scalar(&rho),
        c2: g.mul_scalar(&Fr::from_u64(m)).add(&pk.mul_scalar(&rho)),
    }
}

/// Decrypts to the message point `m·G = c2 − sk·c1` (the discrete log is
/// solved by the caller over the short range, as in the main scheme).
pub fn jub_decrypt_point(sk: &Fr, ct: &JubCiphertext) -> JubPoint {
    ct.c2.add(&ct.c1.mul_scalar(sk).neg())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xbabb)
    }

    #[test]
    fn generator_on_curve() {
        assert!(JubPoint::generator().is_on_curve());
        assert!(JubPoint::identity().is_on_curve());
    }

    #[test]
    fn group_laws() {
        let g = JubPoint::generator();
        let id = JubPoint::identity();
        assert_eq!(g.add(&id), g);
        assert_eq!(g.add(&g.neg()), id);
        assert_eq!(g.double(), g.add(&g));
        let g2 = g.double();
        let g3 = g2.add(&g);
        assert_eq!(g.add(&g2), g3);
        assert!(g3.is_on_curve());
    }

    #[test]
    fn scalar_mul_consistency() {
        let g = JubPoint::generator();
        assert_eq!(g.mul_scalar(&Fr::zero()), JubPoint::identity());
        assert_eq!(g.mul_scalar(&Fr::one()), g);
        assert_eq!(g.mul_scalar(&Fr::from_u64(2)), g.double());
        assert_eq!(g.mul_scalar(&Fr::from_u64(5)), g.double().double().add(&g));
        // Homomorphism with non-wrapping scalars (the Fr modulus differs
        // from the Baby Jubjub subgroup order, so mod-r wraparound would
        // break g^(a+b) = g^a·g^b; u64 sums never wrap).
        let mut rng = rng();
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        assert_eq!(
            g.mul_scalar(&Fr::from_u64(a))
                .add(&g.mul_scalar(&Fr::from_u64(b))),
            g.mul_scalar(&Fr::from_u128(a as u128 + b as u128))
        );
    }

    #[test]
    fn elgamal_round_trip() {
        let mut rng = rng();
        let kp = JubKeyPair::generate(&mut rng);
        for m in [0u64, 1, 7, 42] {
            let ct = jub_encrypt(&kp.pk, m, &mut rng);
            let point = jub_decrypt_point(&kp.sk, &ct);
            assert_eq!(
                point,
                JubPoint::generator().mul_scalar(&Fr::from_u64(m)),
                "m = {m}"
            );
        }
    }

    #[test]
    fn wrong_key_fails() {
        let mut rng = rng();
        let kp1 = JubKeyPair::generate(&mut rng);
        let kp2 = JubKeyPair::generate(&mut rng);
        let ct = jub_encrypt(&kp1.pk, 1, &mut rng);
        assert_ne!(
            jub_decrypt_point(&kp2.sk, &ct),
            JubPoint::generator().mul_scalar(&Fr::one())
        );
    }

    #[test]
    fn scalar_bits_round_trip() {
        let mut rng = rng();
        let k = Fr::random(&mut rng);
        let bits = scalar_bits(&k);
        assert_eq!(bits.len(), 254);
        // Reassemble.
        let mut acc = Fr::zero();
        let two = Fr::from_u64(2);
        for &b in bits.iter().rev() {
            acc = acc * two + if b { Fr::one() } else { Fr::zero() };
        }
        assert_eq!(acc, k);
    }
}
