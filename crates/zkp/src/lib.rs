//! # dragoon-zkp
//!
//! The **generic zk-proof baseline** the paper compares Dragoon against
//! (Tables I & II): a complete Groth16 zk-SNARK pipeline built from
//! scratch on the BN-254 pairing of `dragoon-crypto`:
//!
//! * [`r1cs`] — rank-1 constraint systems and witness assignment.
//! * [`ntt`] — radix-2 number-theoretic transforms for the QAP division.
//! * [`jubjub`] — Baby Jubjub, the SNARK-friendly curve embedded in the
//!   BN-254 scalar field, with an ElGamal instantiation over it.
//! * [`gadgets`] — booleans, bit decomposition and in-circuit Edwards
//!   arithmetic.
//! * [`circuits`] — the baseline VPKE / PoQoEA statements as circuits.
//! * [`groth16`] — trusted setup, prover and (pairing-based) verifier.
//!
//! Substitution note: the paper's baseline measured libsnark proving of
//! RSA-OAEP decryption circuits; here the decryption relation is
//! expressed over the embedded curve instead (see `jubjub` docs). Both
//! put the statement in the tens-of-thousands-of-constraints regime, so
//! the orders-of-magnitude gap the paper reports is reproduced, not
//! assumed.

pub mod circuits;
pub mod crs;
pub mod gadgets;
pub mod groth16;
pub mod jubjub;
pub mod ntt;
pub mod r1cs;

pub use circuits::{poqoea_circuit, vpke_circuit, PoqoeaInstance, VpkeInstance};
pub use crs::{shape_digest, CrsCache, CrsCacheStats};
pub use groth16::{prove, setup, verify, Proof, ProvingKey, SnarkError, VerifyingKey};
pub use r1cs::{ConstraintSystem, LinearCombination, Variable};
