//! Radix-2 number-theoretic transforms over the BN-254 scalar field.
//!
//! `r - 1` is divisible by `2^28`, so multiplicative subgroups of any
//! power-of-two size up to `2^28` exist. The Groth16 prover uses NTTs to
//! evaluate the QAP polynomials on a coset and divide out the vanishing
//! polynomial.

use dragoon_crypto::Fr;

/// An evaluation domain: the `n`-th roots of unity for `n = 2^k`.
#[derive(Clone, Debug)]
pub struct Domain {
    /// Domain size (a power of two).
    pub n: usize,
    log_n: u32,
    omega: Fr,
    omega_inv: Fr,
    n_inv: Fr,
    /// The coset generator used for coset NTTs (the field's smallest
    /// multiplicative generator, 5).
    pub coset_gen: Fr,
    coset_gen_inv: Fr,
}

impl Domain {
    /// Creates a domain of size `>= min_size` (rounded up to a power of
    /// two). Returns `None` when the size exceeds `2^28`.
    pub fn new(min_size: usize) -> Option<Self> {
        let n = min_size.next_power_of_two().max(2);
        let log_n = n.trailing_zeros();
        let omega = Fr::root_of_unity(log_n)?;
        let omega_inv = omega.inverse().expect("root of unity is nonzero");
        let n_inv = Fr::from_u64(n as u64).inverse().expect("n < r");
        let coset_gen = Fr::from_u64(5);
        let coset_gen_inv = coset_gen.inverse().expect("nonzero");
        Some(Self {
            n,
            log_n,
            omega,
            omega_inv,
            n_inv,
            coset_gen,
            coset_gen_inv,
        })
    }

    /// The primitive `n`-th root of unity generating this domain.
    pub fn omega(&self) -> Fr {
        self.omega
    }

    /// The domain elements `ω^0, ω^1, …, ω^{n-1}`.
    pub fn elements(&self) -> Vec<Fr> {
        let mut out = Vec::with_capacity(self.n);
        let mut cur = Fr::one();
        for _ in 0..self.n {
            out.push(cur);
            cur *= self.omega;
        }
        out
    }

    /// In-place forward NTT: coefficients → evaluations on the domain.
    pub fn ntt(&self, values: &mut [Fr]) {
        assert_eq!(values.len(), self.n, "size mismatch");
        ntt_in_place(values, self.omega, self.log_n);
    }

    /// In-place inverse NTT: evaluations → coefficients.
    pub fn intt(&self, values: &mut [Fr]) {
        assert_eq!(values.len(), self.n, "size mismatch");
        ntt_in_place(values, self.omega_inv, self.log_n);
        for v in values.iter_mut() {
            *v *= self.n_inv;
        }
    }

    /// Coset NTT: evaluates the polynomial (given by coefficients) on the
    /// coset `g·H` where `g` is the coset generator.
    pub fn coset_ntt(&self, coeffs: &mut [Fr]) {
        let mut scale = Fr::one();
        for c in coeffs.iter_mut() {
            *c *= scale;
            scale *= self.coset_gen;
        }
        self.ntt(coeffs);
    }

    /// Inverse coset NTT: evaluations on `g·H` → coefficients.
    pub fn coset_intt(&self, evals: &mut [Fr]) {
        self.intt(evals);
        let mut scale = Fr::one();
        for c in evals.iter_mut() {
            *c *= scale;
            scale *= self.coset_gen_inv;
        }
    }

    /// `Z(g·ω^i) = g^n − 1` — the vanishing polynomial `x^n − 1` is
    /// constant on the coset; returns that constant.
    pub fn vanishing_on_coset(&self) -> Fr {
        self.coset_gen.pow(&[self.n as u64]) - Fr::one()
    }

    /// Evaluates `Z(x) = x^n − 1` at an arbitrary point.
    pub fn vanishing_at(&self, x: &Fr) -> Fr {
        x.pow(&[self.n as u64]) - Fr::one()
    }

    /// Evaluates all Lagrange basis polynomials `L_j(x)` at a point
    /// outside the domain: `L_j(x) = Z(x)·ω^j / (n·(x − ω^j))`.
    pub fn lagrange_at(&self, x: &Fr) -> Vec<Fr> {
        let z = self.vanishing_at(x);
        let mut out = Vec::with_capacity(self.n);
        let mut omega_j = Fr::one();
        for _ in 0..self.n {
            let denom = (*x - omega_j) * Fr::from_u64(self.n as u64);
            let denom_inv = denom.inverse().expect("x must lie outside the domain");
            out.push(z * omega_j * denom_inv);
            omega_j *= self.omega;
        }
        out
    }
}

/// Iterative in-place Cooley–Tukey NTT.
fn ntt_in_place(values: &mut [Fr], omega: Fr, log_n: u32) {
    let n = values.len();
    // Bit-reversal permutation.
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - log_n);
        let j = j as usize;
        if i < j {
            values.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let w_len = omega.pow(&[(n / len) as u64]);
        for start in (0..n).step_by(len) {
            let mut w = Fr::one();
            for i in 0..len / 2 {
                let even = values[start + i];
                let odd = values[start + i + len / 2] * w;
                values[start + i] = even + odd;
                values[start + i + len / 2] = even - odd;
                w *= w_len;
            }
        }
        len <<= 1;
    }
}

/// Evaluates a polynomial (coefficient form) at a point (Horner).
pub fn eval_poly(coeffs: &[Fr], x: &Fr) -> Fr {
    let mut acc = Fr::zero();
    for c in coeffs.iter().rev() {
        acc = acc * *x + *c;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x7717)
    }

    #[test]
    fn ntt_round_trip() {
        let mut rng = rng();
        let d = Domain::new(16).unwrap();
        let original: Vec<Fr> = (0..16).map(|_| Fr::random(&mut rng)).collect();
        let mut v = original.clone();
        d.ntt(&mut v);
        d.intt(&mut v);
        assert_eq!(v, original);
    }

    #[test]
    fn ntt_matches_naive_evaluation() {
        let mut rng = rng();
        let d = Domain::new(8).unwrap();
        let coeffs: Vec<Fr> = (0..8).map(|_| Fr::random(&mut rng)).collect();
        let mut v = coeffs.clone();
        d.ntt(&mut v);
        for (i, x) in d.elements().iter().enumerate() {
            assert_eq!(v[i], eval_poly(&coeffs, x), "mismatch at {i}");
        }
    }

    #[test]
    fn coset_ntt_round_trip() {
        let mut rng = rng();
        let d = Domain::new(32).unwrap();
        let original: Vec<Fr> = (0..32).map(|_| Fr::random(&mut rng)).collect();
        let mut v = original.clone();
        d.coset_ntt(&mut v);
        d.coset_intt(&mut v);
        assert_eq!(v, original);
    }

    #[test]
    fn coset_evaluations_differ_from_domain() {
        let mut rng = rng();
        let d = Domain::new(8).unwrap();
        let coeffs: Vec<Fr> = (0..8).map(|_| Fr::random(&mut rng)).collect();
        let mut plain = coeffs.clone();
        let mut coset = coeffs.clone();
        d.ntt(&mut plain);
        d.coset_ntt(&mut coset);
        assert_ne!(plain, coset);
        // Coset evaluation at index 0 is p(g).
        assert_eq!(coset[0], eval_poly(&coeffs, &d.coset_gen));
    }

    #[test]
    fn vanishing_constant_on_coset() {
        let d = Domain::new(16).unwrap();
        let z = d.vanishing_on_coset();
        assert!(!z.is_zero());
        // Check against direct evaluation at two coset points.
        let g = d.coset_gen;
        let w = d.omega();
        assert_eq!(d.vanishing_at(&g), z);
        assert_eq!(d.vanishing_at(&(g * w)), z);
        // And Z vanishes on the domain itself.
        assert!(d.vanishing_at(&w).is_zero());
        assert!(d.vanishing_at(&Fr::one()).is_zero());
    }

    #[test]
    fn lagrange_basis_interpolates() {
        let mut rng = rng();
        let d = Domain::new(8).unwrap();
        let evals: Vec<Fr> = (0..8).map(|_| Fr::random(&mut rng)).collect();
        let x = Fr::random(&mut rng);
        // p(x) = Σ evals[j]·L_j(x) must equal the interpolated poly at x.
        let lag = d.lagrange_at(&x);
        let via_lagrange: Fr = evals
            .iter()
            .zip(&lag)
            .fold(Fr::zero(), |acc, (e, l)| acc + *e * *l);
        let mut coeffs = evals.clone();
        d.intt(&mut coeffs);
        assert_eq!(via_lagrange, eval_poly(&coeffs, &x));
    }

    #[test]
    fn domain_size_rounds_up() {
        assert_eq!(Domain::new(5).unwrap().n, 8);
        assert_eq!(Domain::new(8).unwrap().n, 8);
        assert_eq!(Domain::new(9).unwrap().n, 16);
        assert_eq!(Domain::new(1).unwrap().n, 2);
    }

    #[test]
    fn polynomial_product_via_coset() {
        // Multiply two degree-3 polynomials via size-8 NTT and compare
        // against schoolbook.
        let mut rng = rng();
        let a: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        let b: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        let d = Domain::new(8).unwrap();
        let mut ae = a.clone();
        ae.resize(8, Fr::zero());
        let mut be = b.clone();
        be.resize(8, Fr::zero());
        d.ntt(&mut ae);
        d.ntt(&mut be);
        let mut ce: Vec<Fr> = ae.iter().zip(&be).map(|(x, y)| *x * *y).collect();
        d.intt(&mut ce);
        // Schoolbook.
        let mut expect = vec![Fr::zero(); 8];
        for (i, x) in a.iter().enumerate() {
            for (j, y) in b.iter().enumerate() {
                expect[i + j] += *x * *y;
            }
        }
        assert_eq!(ce, expect);
    }

    #[test]
    fn eval_poly_basics() {
        // p(x) = 1 + 2x + 3x^2 at x=2 → 1+4+12 = 17.
        let coeffs = vec![Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)];
        assert_eq!(eval_poly(&coeffs, &Fr::from_u64(2)), Fr::from_u64(17));
        assert_eq!(eval_poly(&[], &Fr::from_u64(2)), Fr::zero());
    }
}
