//! Rank-1 constraint systems: the intermediate representation the
//! generic zk-proof baseline compiles statements into.
//!
//! A constraint is `⟨A, w⟩ · ⟨B, w⟩ = ⟨C, w⟩` over the witness vector
//! `w = (1, public inputs…, auxiliary…)`. This mirrors the libsnark/
//! bellman architecture the paper's baseline measurements used.

use dragoon_crypto::Fr;
use std::fmt;

/// A variable index into the witness vector.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Variable {
    /// The constant-one wire (index 0).
    One,
    /// A public-input wire.
    Public(usize),
    /// An auxiliary (private witness) wire.
    Aux(usize),
}

/// A sparse linear combination `Σ coeff · var`.
#[derive(Clone, Debug, Default)]
pub struct LinearCombination(pub Vec<(Variable, Fr)>);

impl LinearCombination {
    /// The empty (zero) combination.
    pub fn zero() -> Self {
        Self(Vec::new())
    }

    /// A single variable with coefficient 1.
    pub fn from_var(v: Variable) -> Self {
        Self(vec![(v, Fr::one())])
    }

    /// A constant.
    pub fn constant(c: Fr) -> Self {
        Self(vec![(Variable::One, c)])
    }

    /// Adds `coeff · var` to this combination.
    pub fn add_term(mut self, v: Variable, coeff: Fr) -> Self {
        self.0.push((v, coeff));
        self
    }

    /// Combination addition.
    pub fn add_lc(mut self, other: &LinearCombination) -> Self {
        self.0.extend(other.0.iter().cloned());
        self
    }

    /// Scales every coefficient.
    pub fn scale(mut self, k: Fr) -> Self {
        for (_, c) in &mut self.0 {
            *c *= k;
        }
        self
    }

    /// Evaluates against a full witness assignment.
    pub fn evaluate(&self, cs: &ConstraintSystem) -> Fr {
        self.0
            .iter()
            .fold(Fr::zero(), |acc, (v, c)| acc + cs.value_of(*v) * *c)
    }
}

/// One R1CS constraint `A·B = C`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// The `A` combination.
    pub a: LinearCombination,
    /// The `B` combination.
    pub b: LinearCombination,
    /// The `C` combination.
    pub c: LinearCombination,
}

/// Error from witness generation / constraint checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsatisfiedConstraint {
    /// Index of the first violated constraint.
    pub index: usize,
}

impl fmt::Display for UnsatisfiedConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint {} is not satisfied", self.index)
    }
}

impl std::error::Error for UnsatisfiedConstraint {}

/// A constraint system under construction, carrying the (optional)
/// witness assignment alongside the constraints — the "prover mode" of
/// bellman-style builders.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSystem {
    /// All constraints.
    pub constraints: Vec<Constraint>,
    /// Public-input assignments (instance).
    pub public_inputs: Vec<Fr>,
    /// Auxiliary (witness) assignments.
    pub aux: Vec<Fr>,
}

impl ConstraintSystem {
    /// An empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a public input with a value.
    pub fn alloc_public(&mut self, value: Fr) -> Variable {
        self.public_inputs.push(value);
        Variable::Public(self.public_inputs.len() - 1)
    }

    /// Allocates an auxiliary witness variable with a value.
    pub fn alloc_aux(&mut self, value: Fr) -> Variable {
        self.aux.push(value);
        Variable::Aux(self.aux.len() - 1)
    }

    /// The assigned value of a variable.
    pub fn value_of(&self, v: Variable) -> Fr {
        match v {
            Variable::One => Fr::one(),
            Variable::Public(i) => self.public_inputs[i],
            Variable::Aux(i) => self.aux[i],
        }
    }

    /// Adds the constraint `a · b = c`.
    pub fn enforce(&mut self, a: LinearCombination, b: LinearCombination, c: LinearCombination) {
        self.constraints.push(Constraint { a, b, c });
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Total number of variables (1 + public + aux).
    pub fn num_variables(&self) -> usize {
        1 + self.public_inputs.len() + self.aux.len()
    }

    /// Number of public inputs.
    pub fn num_public(&self) -> usize {
        self.public_inputs.len()
    }

    /// The dense index of a variable in the flattened witness vector
    /// `(1, publics…, aux…)`.
    pub fn dense_index(&self, v: Variable) -> usize {
        match v {
            Variable::One => 0,
            Variable::Public(i) => 1 + i,
            Variable::Aux(i) => 1 + self.public_inputs.len() + i,
        }
    }

    /// The full witness vector `(1, publics…, aux…)`.
    pub fn full_assignment(&self) -> Vec<Fr> {
        let mut w = Vec::with_capacity(self.num_variables());
        w.push(Fr::one());
        w.extend_from_slice(&self.public_inputs);
        w.extend_from_slice(&self.aux);
        w
    }

    /// Checks every constraint against the assignment.
    pub fn is_satisfied(&self) -> Result<(), UnsatisfiedConstraint> {
        for (i, con) in self.constraints.iter().enumerate() {
            let a = con.a.evaluate(self);
            let b = con.b.evaluate(self);
            let c = con.c.evaluate(self);
            if a * b != c {
                return Err(UnsatisfiedConstraint { index: i });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_multiplication_gate() {
        // Prove knowledge of x, y with x*y = 35 (public).
        let mut cs = ConstraintSystem::new();
        let out = cs.alloc_public(Fr::from_u64(35));
        let x = cs.alloc_aux(Fr::from_u64(5));
        let y = cs.alloc_aux(Fr::from_u64(7));
        cs.enforce(
            LinearCombination::from_var(x),
            LinearCombination::from_var(y),
            LinearCombination::from_var(out),
        );
        cs.is_satisfied().unwrap();
    }

    #[test]
    fn unsatisfied_detected() {
        let mut cs = ConstraintSystem::new();
        let out = cs.alloc_public(Fr::from_u64(36));
        let x = cs.alloc_aux(Fr::from_u64(5));
        let y = cs.alloc_aux(Fr::from_u64(7));
        cs.enforce(
            LinearCombination::from_var(x),
            LinearCombination::from_var(y),
            LinearCombination::from_var(out),
        );
        assert_eq!(cs.is_satisfied(), Err(UnsatisfiedConstraint { index: 0 }));
    }

    #[test]
    fn linear_combination_arithmetic() {
        let mut cs = ConstraintSystem::new();
        let x = cs.alloc_aux(Fr::from_u64(3));
        let y = cs.alloc_aux(Fr::from_u64(4));
        // (2x + 3y + 1) evaluated = 6 + 12 + 1 = 19.
        let lc = LinearCombination::zero()
            .add_term(x, Fr::from_u64(2))
            .add_term(y, Fr::from_u64(3))
            .add_term(Variable::One, Fr::one());
        assert_eq!(lc.evaluate(&cs), Fr::from_u64(19));
        // Scale by 2 → 38.
        assert_eq!(
            lc.clone().scale(Fr::from_u64(2)).evaluate(&cs),
            Fr::from_u64(38)
        );
        // Add lc to itself → 38.
        assert_eq!(lc.clone().add_lc(&lc).evaluate(&cs), Fr::from_u64(38));
    }

    #[test]
    fn dense_indices_are_contiguous() {
        let mut cs = ConstraintSystem::new();
        let p0 = cs.alloc_public(Fr::one());
        let p1 = cs.alloc_public(Fr::one());
        let a0 = cs.alloc_aux(Fr::one());
        assert_eq!(cs.dense_index(Variable::One), 0);
        assert_eq!(cs.dense_index(p0), 1);
        assert_eq!(cs.dense_index(p1), 2);
        assert_eq!(cs.dense_index(a0), 3);
        assert_eq!(cs.num_variables(), 4);
        assert_eq!(cs.full_assignment().len(), 4);
    }

    #[test]
    fn linear_constraints_via_one_wire() {
        // Enforce x + y = 10 as (x + y) * 1 = 10.
        let mut cs = ConstraintSystem::new();
        let x = cs.alloc_aux(Fr::from_u64(6));
        let y = cs.alloc_aux(Fr::from_u64(4));
        cs.enforce(
            LinearCombination::from_var(x).add_term(y, Fr::one()),
            LinearCombination::from_var(Variable::One),
            LinearCombination::constant(Fr::from_u64(10)),
        );
        cs.is_satisfied().unwrap();
    }
}
