//! Property-based tests of the SNARK substrate: NTT algebra, R1CS
//! gadget correctness over random inputs, and Baby Jubjub group laws.

use dragoon_crypto::Fr;
use dragoon_zkp::gadgets::{alloc_bits, alloc_point, point_add, point_select, scalar_mul};
use dragoon_zkp::jubjub::{scalar_bits, JubKeyPair, JubPoint};
use dragoon_zkp::ntt::{eval_poly, Domain};
use dragoon_zkp::r1cs::ConstraintSystem;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fr(seed: u64) -> Fr {
    Fr::random(&mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ntt_round_trip_random_sizes(log_n in 1u32..8, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let d = Domain::new(n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let original: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let mut v = original.clone();
        d.ntt(&mut v);
        d.intt(&mut v);
        prop_assert_eq!(v, original.clone());
        let mut v = original.clone();
        d.coset_ntt(&mut v);
        d.coset_intt(&mut v);
        prop_assert_eq!(v, original);
    }

    #[test]
    fn lagrange_interpolation_agrees(seed in any::<u64>(), x_seed in any::<u64>()) {
        let d = Domain::new(8).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let evals: Vec<Fr> = (0..8).map(|_| Fr::random(&mut rng)).collect();
        let x = fr(x_seed);
        // Skip the negligible chance x is in the domain.
        if d.vanishing_at(&x).is_zero() {
            return Ok(());
        }
        let lag = d.lagrange_at(&x);
        let via_lag: Fr = evals.iter().zip(&lag).fold(Fr::zero(), |a, (e, l)| a + *e * *l);
        let mut coeffs = evals.clone();
        d.intt(&mut coeffs);
        prop_assert_eq!(via_lag, eval_poly(&coeffs, &x));
    }

    #[test]
    fn jubjub_group_laws(a in any::<u64>(), b in any::<u64>()) {
        let g = JubPoint::generator();
        // NOTE: Baby Jubjub's subgroup order l differs from the Fr
        // modulus r, so g^(a+b mod r) != g^a · g^b when a+b wraps mod r.
        // u64 scalars never wrap, making the homomorphism exact.
        let (ka, kb) = (Fr::from_u64(a), Fr::from_u64(b));
        let p = g.mul_scalar(&ka);
        let q = g.mul_scalar(&kb);
        prop_assert!(p.is_on_curve());
        prop_assert_eq!(p.add(&q), q.add(&p));
        prop_assert_eq!(p.add(&p.neg()), JubPoint::identity());
        prop_assert_eq!(
            g.mul_scalar(&ka).add(&g.mul_scalar(&kb)),
            g.mul_scalar(&Fr::from_u128(a as u128 + b as u128))
        );
    }

    #[test]
    fn addition_gadget_random_points(a in any::<u64>(), b in any::<u64>()) {
        let g = JubPoint::generator();
        let p = g.mul_scalar(&fr(a));
        let q = g.mul_scalar(&fr(b));
        let native = p.add(&q);
        let mut cs = ConstraintSystem::new();
        let pv = alloc_point(&mut cs, &p);
        let qv = alloc_point(&mut cs, &q);
        let sum = point_add(&mut cs, pv, qv);
        prop_assert!(cs.is_satisfied().is_ok());
        prop_assert_eq!(cs.value_of(sum.x), native.x);
        prop_assert_eq!(cs.value_of(sum.y), native.y);
    }

    #[test]
    fn scalar_mul_gadget_small_scalars(k in 0u64..1024, base_seed in any::<u64>()) {
        let base = JubPoint::generator().mul_scalar(&fr(base_seed));
        let native = base.mul_scalar(&Fr::from_u64(k));
        let mut cs = ConstraintSystem::new();
        let bits = alloc_bits(&mut cs, &Fr::from_u64(k), 10);
        let bv = alloc_point(&mut cs, &base);
        let out = scalar_mul(&mut cs, &bits, bv);
        prop_assert!(cs.is_satisfied().is_ok());
        prop_assert_eq!(cs.value_of(out.x), native.x);
        prop_assert_eq!(cs.value_of(out.y), native.y);
    }

    #[test]
    fn select_gadget_both_branches(bit in any::<bool>(), a in any::<u64>(), b in any::<u64>()) {
        let g = JubPoint::generator();
        let p = g.mul_scalar(&fr(a));
        let q = g.mul_scalar(&fr(b));
        let mut cs = ConstraintSystem::new();
        let bvar = cs.alloc_aux(if bit { Fr::one() } else { Fr::zero() });
        let pv = alloc_point(&mut cs, &p);
        let qv = alloc_point(&mut cs, &q);
        let out = point_select(&mut cs, bvar, pv, qv);
        prop_assert!(cs.is_satisfied().is_ok());
        let expect = if bit { p } else { q };
        prop_assert_eq!(cs.value_of(out.x), expect.x);
        prop_assert_eq!(cs.value_of(out.y), expect.y);
    }

    #[test]
    fn scalar_bits_reconstruct(seed in any::<u64>()) {
        let k = fr(seed);
        let bits = scalar_bits(&k);
        let mut acc = Fr::zero();
        for &b in bits.iter().rev() {
            acc = acc + acc + if b { Fr::one() } else { Fr::zero() };
        }
        prop_assert_eq!(acc, k);
    }

    #[test]
    fn jub_elgamal_round_trip(m in 0u64..32, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = JubKeyPair::generate(&mut rng);
        let ct = dragoon_zkp::jubjub::jub_encrypt(&kp.pk, m, &mut rng);
        let point = dragoon_zkp::jubjub::jub_decrypt_point(&kp.sk, &ct);
        prop_assert_eq!(point, JubPoint::generator().mul_scalar(&Fr::from_u64(m)));
    }
}
