//! Adversarial scenarios: the attacks the paper's design defends
//! against, demonstrated on the running system.
//!
//! 1. **Copy-and-paste free-riding** — a worker replays an honest
//!    commitment; the contract's duplicate check locks it out, and the
//!    ciphertext content is never visible in time to copy anyway.
//! 2. **Commit-then-vanish** — a worker commits but never opens; it is
//!    recorded as ⊥ and earns nothing.
//! 3. **Rushing adversary** — the network reorders every round's
//!    messages; outcomes are unchanged (the commit–reveal structure is
//!    order-insensitive within a phase).
//!
//! ```sh
//! cargo run --release --example adversarial_workers
//! ```

use dragoon_chain::{GasSchedule, ReversePolicy};
use dragoon_contract::Settlement;
use dragoon_core::workload::{imagenet_workload, AnswerModel};
use dragoon_protocol::{driver, WorkerBehavior};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(dragoon_sim::seed_from_args_or(7));
    let honest = WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.97 });

    // ---- Scenario 1: the copy-paste attacker races four honest workers.
    println!("Scenario 1: copy-and-paste free-rider");
    let report = driver::run(
        driver::RunConfig {
            workload: imagenet_workload(4_000_000, &mut rng),
            behaviors: vec![
                honest.clone(),
                honest.clone(),
                honest.clone(),
                honest.clone(),
                WorkerBehavior::CopyPaste,
            ],
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );
    let copier = report.workers[4];
    println!(
        "  copier settlement: {:?}  balance: {}",
        report.settlements.get(&copier),
        report.balances[&copier]
    );
    assert_eq!(report.balances[&copier], 0);
    println!("  → duplicate commitment reverted; the attacker earned nothing.\n");

    // ---- Scenario 2: commit-then-vanish.
    println!("Scenario 2: commit without reveal");
    let report = driver::run(
        driver::RunConfig {
            workload: imagenet_workload(4_000_000, &mut rng),
            behaviors: vec![
                honest.clone(),
                honest.clone(),
                honest.clone(),
                WorkerBehavior::CommitNoReveal,
            ],
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );
    let silent = report.workers[3];
    println!(
        "  silent worker: {:?}, balance {}; requester refunded {}",
        report.settlements[&silent], report.balances[&silent], report.balances[&report.requester]
    );
    assert_eq!(report.balances[&silent], 0);
    println!("  → recorded as ⊥; the unclaimed share returned to the requester.\n");

    // ---- Scenario 3: rushing adversary reorders every round.
    println!("Scenario 3: rushing adversary (reverse delivery order each round)");
    let report = driver::run_with_policy(
        driver::RunConfig {
            workload: imagenet_workload(4_000_000, &mut rng),
            behaviors: vec![honest.clone(), honest.clone(), honest.clone(), honest],
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut ReversePolicy,
        &mut rng,
    );
    let all_paid = report.settlements.values().all(|s| *s == Settlement::Paid);
    println!(
        "  all four honest workers paid under reordering: {all_paid} \
         (answers collected: {})",
        report.collected.len()
    );
    assert!(all_paid);
    println!("  → message reordering cannot break fairness.");
}
