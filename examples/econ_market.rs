//! The long-horizon econ-market scenario: the full `dragoon-econ` layer
//! over the marketplace engine — cross-HIT worker reputation (ordering
//! and gating), dynamic pricing of `B` from observed fill rates against
//! reservation-wage supply, seeded worker churn, a golden-withholding
//! requester cartel and a reputation-farming sybil cohort.
//!
//! ```sh
//! cargo run --release --example econ_market            # default seed
//! cargo run --release --example econ_market -- 42      # CLI seed
//! DRAGOON_SEED=42 cargo run --release --example econ_market
//! ```
//!
//! The `JSON:` and `ECON:` lines are deterministic for a given seed at
//! any executor thread count; CI diffs them against committed golden
//! files (`tests/golden/`) to regression-gate scenario determinism.

use dragoon_econ::{ChurnParams, EconConfig, PricingParams};
use dragoon_sim::{run_market, seed_from_args_or, MarketConfig};

fn main() {
    dragoon_trace::init_from_env();
    let seed = seed_from_args_or(0xd1a6_0005);
    let config = MarketConfig {
        hits: 120,
        // One HIT per block: publishing spans the whole horizon, so the
        // pricing controller adapts while the market is still live.
        spawn_per_block: 1,
        workers: 60,
        worker_capacity: 4,
        seed,
        max_blocks: 1_500,
        econ: EconConfig {
            enabled: true,
            // Open the market underpriced: the controller has to discover
            // the clearing wage against the pool's reservation spread.
            pricing: Some(PricingParams {
                initial: 1_500,
                min: 600,
                max: 24_000,
                ..PricingParams::default()
            }),
            churn: Some(ChurnParams::default()),
            reservation_wages: true,
            cartel_requesters: 24, // 20% of requesters collude
            sybil_workers: 6,      // 10% of the opening pool
            ..EconConfig::default()
        },
        ..MarketConfig::default()
    };
    println!(
        "econ market: {} HITs (N={}, K={}, Θ={}) to a churning {}-worker pool, \
         24 cartel requesters, 6 sybils, seed {seed:#x}\n",
        config.hits, config.questions, config.k, config.theta, config.workers
    );
    let report = run_market(config);
    print!("{}", report.summary());
    println!();
    dragoon_trace::emit_summary("JSON", report.to_json());
    dragoon_trace::emit_summary("ECON", report.econ_json());
    dragoon_trace::emit_summary("PROVING", report.proving_json());
    dragoon_trace::emit_summary("SCHEDULER", report.scheduler_json());
    dragoon_trace::emit_summary("METRICS", report.metrics_json());
    dragoon_trace::finish();
}
