//! Prints a detailed per-transaction gas breakdown of a full ImageNet
//! run — the drill-down behind Table III, showing *where* every unit of
//! gas goes (calldata, storage, precompiles, logs) — plus the parallel
//! executor's scheduler telemetry for a small marketplace run.
//!
//! ```sh
//! cargo run --release --example gas_report
//! DRAGOON_THREADS=4 cargo run --release --example gas_report
//! ```

use dragoon_chain::{gas_to_usd, GasSchedule, TxStatus};
use dragoon_core::workload::{imagenet_workload, AnswerModel};
use dragoon_protocol::{driver, WorkerBehavior};
use dragoon_sim::{run_market, MarketConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn main() {
    dragoon_trace::init_from_env();
    let seed = dragoon_sim::seed_from_args_or(1108);
    let mut rng = StdRng::seed_from_u64(seed);
    // Worst case (reject all) exercises every code path.
    let report = driver::run(
        driver::RunConfig {
            workload: imagenet_workload(4_000_000, &mut rng),
            behaviors: vec![WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.0 }); 4],
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );

    println!("== Per-transaction gas breakdown (ImageNet task, worst case) ==\n");
    println!("{:<10} {:<9} {:>10}   breakdown", "tx", "status", "gas");
    let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in report.chain.receipts() {
        let status = match &r.status {
            TxStatus::Ok => "ok",
            TxStatus::Reverted(_) => "reverted",
        };
        let mut by_label: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (label, g) in &r.gas_breakdown {
            *by_label.entry(label).or_default() += g;
            *totals.entry(label).or_default() += g;
        }
        let parts: Vec<String> = by_label
            .iter()
            .map(|(l, g)| format!("{l}={}k", g / 1_000))
            .collect();
        println!(
            "{:<10} {:<9} {:>10}   {}",
            r.label,
            status,
            r.gas_used,
            parts.join(" ")
        );
    }
    println!("\n== Where the gas goes (whole protocol) ==");
    let grand: u64 = totals.values().sum();
    for (label, g) in &totals {
        println!(
            "{:<12} {:>10} gas  ({:>4.1}%)",
            label,
            g,
            100.0 * *g as f64 / grand as f64
        );
    }
    println!(
        "\nTOTAL: {} gas  =  ${:.2} at 1.5 gwei / $115 per ETH",
        grand,
        gas_to_usd(grand)
    );

    // Parallel-executor telemetry: a small marketplace run surfaces the
    // scheduler counters (groups, selective retries, fallbacks) outside
    // the bench — the serial path reports all zeros.
    let market = MarketConfig {
        hits: 40,
        workers: 30,
        seed,
        ..MarketConfig::default()
    };
    println!("\n== Parallel-executor scheduler stats (40-HIT market, seed {seed:#x}) ==\n");
    let report = run_market(market);
    dragoon_trace::emit_summary("SCHEDULER", report.scheduler_json());
    println!("\n== Proving-service stats (same run) ==\n");
    dragoon_trace::emit_summary("PROVING", report.proving_json());
    dragoon_trace::finish();
}
