//! Prints a detailed per-transaction gas breakdown of a full ImageNet
//! run — the drill-down behind Table III, showing *where* every unit of
//! gas goes (calldata, storage, precompiles, logs).
//!
//! ```sh
//! cargo run --release --example gas_report
//! ```

use dragoon_chain::{gas_to_usd, GasSchedule, TxStatus};
use dragoon_core::workload::{imagenet_workload, AnswerModel};
use dragoon_protocol::{driver, WorkerBehavior};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn main() {
    let mut rng = StdRng::seed_from_u64(dragoon_sim::seed_from_args_or(1108));
    // Worst case (reject all) exercises every code path.
    let report = driver::run(
        driver::RunConfig {
            workload: imagenet_workload(4_000_000, &mut rng),
            behaviors: vec![WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.0 }); 4],
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );

    println!("== Per-transaction gas breakdown (ImageNet task, worst case) ==\n");
    println!("{:<10} {:<9} {:>10}   breakdown", "tx", "status", "gas");
    let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in report.chain.receipts() {
        let status = match &r.status {
            TxStatus::Ok => "ok",
            TxStatus::Reverted(_) => "reverted",
        };
        let mut by_label: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (label, g) in &r.gas_breakdown {
            *by_label.entry(label).or_default() += g;
            *totals.entry(label).or_default() += g;
        }
        let parts: Vec<String> = by_label
            .iter()
            .map(|(l, g)| format!("{l}={}k", g / 1_000))
            .collect();
        println!(
            "{:<10} {:<9} {:>10}   {}",
            r.label,
            status,
            r.gas_used,
            parts.join(" ")
        );
    }
    println!("\n== Where the gas goes (whole protocol) ==");
    let grand: u64 = totals.values().sum();
    for (label, g) in &totals {
        println!(
            "{:<12} {:>10} gas  ({:>4.1}%)",
            label,
            g,
            100.0 * *g as f64 / grand as f64
        );
    }
    println!(
        "\nTOTAL: {} gas  =  ${:.2} at 1.5 gwei / $115 per ETH",
        grand,
        gas_to_usd(grand)
    );
}
