//! The paper's §VI experiment: an ImageNet-style image-annotation HIT on
//! the decentralized protocol.
//!
//! Task policy (exactly the paper's): 106 binary attribute questions, 6
//! of which are the requester's secret gold standards; 4 workers; a
//! submission is rejected iff it fails 3 or more gold standards (Θ = 4).
//!
//! ```sh
//! cargo run --release --example imagenet_annotation
//! ```

use dragoon_chain::{gas_to_usd, GasSchedule};
use dragoon_contract::Settlement;
use dragoon_core::workload::{imagenet_workload, AnswerModel};
use dragoon_protocol::{driver, WorkerBehavior};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(dragoon_sim::seed_from_args_or(2020));

    // The ImageNet annotation task with a 4M-unit budget (1M per worker).
    let workload = imagenet_workload(4_000_000, &mut rng);
    println!(
        "ImageNet HIT: N = {}, |G| = {}, K = {}, Θ = {}\n",
        workload.spec.n,
        workload.golden.len(),
        workload.spec.k,
        workload.spec.theta
    );

    // A realistic crowd: three diligent annotators with ordinary error
    // rates and one low-effort spammer
    // whose answers are mostly wrong.
    let behaviors = vec![
        WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.97 }),
        WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.93 }),
        WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.90 }),
        WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.15 }),
    ];

    let report = driver::run(
        driver::RunConfig {
            workload,
            behaviors,
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );

    println!("Worker outcomes:");
    for (i, worker) in report.workers.iter().enumerate() {
        let outcome = match report.settlements.get(worker) {
            Some(Settlement::Paid) => "PAID 1,000,000".to_string(),
            Some(Settlement::Rejected(reason)) => format!("REJECTED ({reason:?})"),
            None => "not in task".to_string(),
        };
        println!("  worker {i}: {outcome}");
    }
    println!(
        "\nAnnotations collected: {} × {} labels",
        report.collected.len(),
        report.collected.first().map(|(_, a)| a.len()).unwrap_or(0)
    );

    println!("\nOn-chain handling fees (Table III rows):");
    println!(
        "  publish:           {:>9} gas  (${:.2})",
        report.gas.publish,
        gas_to_usd(report.gas.publish)
    );
    for (i, submit) in report.gas.submit_per_worker().iter().enumerate() {
        println!(
            "  submit (worker {i}): {:>9} gas  (${:.2})",
            submit,
            gas_to_usd(*submit)
        );
    }
    for (i, rej) in report.gas.rejects.iter().enumerate() {
        println!(
            "  rejection #{i}:      {:>9} gas  (${:.2})",
            rej,
            gas_to_usd(*rej)
        );
    }
    println!(
        "  golden + settle:   {:>9} gas",
        report.gas.golden + report.gas.finalize
    );
    let total = report.gas.total();
    println!(
        "  TOTAL:             {:>9} gas  (${:.2}; MTurk charges ≥ $4.00 for this task)",
        total,
        gas_to_usd(total)
    );
}
