//! The marketplace engine end to end: hundreds of concurrent HITs over
//! one gas-capped chain with batched settlement verification, persisted
//! through the pipelined block store (background writer, incremental
//! snapshots, log compaction, overlapped settlement verification).
//!
//! ```sh
//! cargo run --release --example marketplace            # default seed
//! cargo run --release --example marketplace -- 42      # CLI seed
//! DRAGOON_SEED=0xfeed cargo run --release --example marketplace
//! ```

use dragoon_sim::{run_market, seed_from_args_or, MarketConfig, PersistConfig};

fn main() {
    dragoon_trace::init_from_env();
    let seed = seed_from_args_or(0xd1a6_0001);
    let store_dir =
        std::env::temp_dir().join(format!("dragoon-marketplace-{}", std::process::id()));
    let config = MarketConfig {
        hits: 250,
        spawn_per_block: 10,
        workers: 90,
        worker_capacity: 5,
        seed,
        max_blocks: 900,
        // The market report is byte-identical at every thread count, but
        // the store's delta byte counts follow the executor's dirty-set
        // over-approximation — the PERSIST line is only golden with the
        // executor pinned serial.
        exec_threads: 1,
        persist: Some(PersistConfig {
            snapshot_every: 8,
            ..PersistConfig::pipelined(store_dir.clone())
        }),
        ..MarketConfig::default()
    };
    println!(
        "publishing {} HITs (N={}, K={}, Θ={}) to a {}-worker pool, seed {seed:#x}\n",
        config.hits, config.questions, config.k, config.theta, config.workers
    );
    let report = run_market(config);
    print!("{}", report.summary());
    println!();
    dragoon_trace::emit_summary("JSON", report.to_json());
    dragoon_trace::emit_summary("PROVING", report.proving_json());
    dragoon_trace::emit_summary("PERSIST", report.persist_json());
    dragoon_trace::emit_summary("SCHEDULER", report.scheduler_json());
    dragoon_trace::emit_summary("METRICS", report.metrics_json());
    dragoon_trace::finish();
    let _ = std::fs::remove_dir_all(&store_dir);
}
