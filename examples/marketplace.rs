//! The marketplace engine end to end: hundreds of concurrent HITs over
//! one gas-capped chain with batched settlement verification.
//!
//! ```sh
//! cargo run --release --example marketplace            # default seed
//! cargo run --release --example marketplace -- 42      # CLI seed
//! DRAGOON_SEED=0xfeed cargo run --release --example marketplace
//! ```

use dragoon_sim::{run_market, seed_from_args_or, MarketConfig};

fn main() {
    let seed = seed_from_args_or(0xd1a6_0001);
    let config = MarketConfig {
        hits: 250,
        spawn_per_block: 10,
        workers: 90,
        worker_capacity: 5,
        seed,
        max_blocks: 900,
        ..MarketConfig::default()
    };
    println!(
        "publishing {} HITs (N={}, K={}, Θ={}) to a {}-worker pool, seed {seed:#x}\n",
        config.hits, config.questions, config.k, config.theta, config.workers
    );
    let report = run_market(config);
    print!("{}", report.summary());
    println!("\nJSON: {}", report.to_json());
    println!("PROVING: {}", report.proving_json());
    println!("scheduler JSON: {}", report.scheduler_json());
}
