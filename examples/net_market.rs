//! The multi-node network scenario: a full marketplace run whose
//! canonical chain fans out over a 4-node `dragoon-net` gossip network
//! with seeded link delays, loss, duplicate delivery, a mid-run
//! partition and a withhold-and-release block relay — so replicas go
//! stale, fork, and reorg back onto the canonical branch before the
//! final drain converges every node to bit-identical state.
//!
//! ```sh
//! cargo run --release --example net_market            # default seed
//! cargo run --release --example net_market -- 42      # CLI seed
//! DRAGOON_SEED=42 cargo run --release --example net_market
//! ```
//!
//! The `JSON:` and `NET:` lines are deterministic for a given seed at
//! any executor thread count; CI diffs them against committed golden
//! files (`tests/golden/`) to regression-gate scenario determinism.

use dragoon_net::{NetConfig, PartitionWindow, RelaySpec};
use dragoon_sim::{run_market, seed_from_args_or, MarketConfig};

fn main() {
    dragoon_trace::init_from_env();
    let seed = seed_from_args_or(0xd1a6_0006);
    let net = NetConfig {
        nodes: 4,
        delay: (1, 3),
        drop_per_mille: 60,
        duplicate_per_mille: 40,
        fork_patience: 3,
        // Nodes 2 and 3 spend twenty rounds on an island mid-run...
        partitions: vec![PartitionWindow {
            start: 10,
            end: 30,
            island: vec![2, 3],
        }],
        // ...and the sequencer's blocks only reach anyone in periodic
        // bursts, so even connected replicas run stale and fork.
        relay: RelaySpec::WithholdRelease { period: 6 },
        ..NetConfig::default()
    };
    let config = MarketConfig {
        hits: 40,
        spawn_per_block: 4,
        workers: 30,
        seed,
        net: Some(net),
        ..MarketConfig::default()
    };
    println!(
        "net market: {} HITs (N={}, K={}, Θ={}) over a 4-node gossip network — \
         withhold-release relay, 20-round partition, seed {seed:#x}\n",
        config.hits, config.questions, config.k, config.theta
    );
    let report = run_market(config);
    print!("{}", report.summary());
    println!();
    dragoon_trace::emit_summary("JSON", report.to_json());
    dragoon_trace::emit_summary("NET", report.net_json());
    dragoon_trace::emit_summary("SCHEDULER", report.scheduler_json());
    dragoon_trace::emit_summary("METRICS", report.metrics_json());
    dragoon_trace::finish();
}
