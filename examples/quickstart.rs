//! Quickstart: a small private decentralized HIT, end to end.
//!
//! A requester crowdsources 10 binary questions from 3 workers with a
//! 300-coin budget; 2 gold standards gate the payments. Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dragoon_chain::{gas_to_usd, GasSchedule};
use dragoon_core::workload::{generate_workload, AnswerModel};
use dragoon_crypto::elgamal::PlaintextRange;
use dragoon_protocol::{driver, WorkerBehavior};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(dragoon_sim::seed_from_args_or(42));

    // 1. Describe the task: 10 binary questions, 2 secret gold
    //    standards, 3 workers, pay each 100 coins if they clear Θ = 2.
    let workload = generate_workload(
        10,                       // N questions
        2,                        // |G| gold standards
        3,                        // K workers
        2,                        // Θ quality threshold
        PlaintextRange::binary(), // answer options {0, 1}
        300,                      // budget B
        &mut rng,
    );
    println!(
        "Task: {} questions, {} golds, {} workers, Θ = {}, reward = {} each\n",
        workload.spec.n,
        workload.golden.len(),
        workload.spec.k,
        workload.spec.theta,
        workload.spec.reward_per_worker()
    );

    // 2. Choose worker behaviours: two diligent, one careless.
    let behaviors = vec![
        WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 1.0 }),
        WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.95 }),
        WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.10 }),
    ];

    // 3. Run the whole protocol over the simulated chain: publish →
    //    commit → reveal → evaluate (PoQoEA rejections) → settle.
    let report = driver::run(
        driver::RunConfig {
            workload,
            behaviors,
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );

    // 4. Outcomes.
    println!("Settlements:");
    for (worker, settlement) in &report.settlements {
        println!(
            "  {worker}  →  {settlement:?}  (balance {})",
            report.balances[worker]
        );
    }
    println!(
        "\nRequester refund: {} coins",
        report.balances[&report.requester]
    );
    println!("Answers collected: {}", report.collected.len());
    for (worker, answer) in &report.collected {
        println!("  {worker}: {:?}", answer.0);
    }
    let total = report.gas.total();
    println!(
        "\nTotal on-chain handling: {} gas  (≈ ${:.2} at the paper's rates)",
        total,
        gas_to_usd(total)
    );
}
