//! Mempool `ReorderPolicy` under contention: a front-runner racing
//! honest workers for a task's last commitment slot, gas-capped blocks
//! deferring (never dropping) the overflow, and worker churn under
//! front-running never stranding escrowed coins.

use dragoon_chain::{Chain, FifoPolicy, FrontRunPolicy, GasSchedule, TxStatus};
use dragoon_contract::{HitContract, HitMessage, Phase, PhaseWindows, PublishParams};
use dragoon_crypto::commitment::{Commitment, CommitmentKey};
use dragoon_crypto::elgamal::{KeyPair, PlaintextRange};
use dragoon_econ::{ChurnParams, EconConfig};
use dragoon_ledger::Address;
use dragoon_sim::{MarketConfig, MarketPolicy, MarketSim};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BUDGET: u128 = 3_000;

struct Fixture {
    rng: StdRng,
    chain: Chain<HitContract>,
    requester: Address,
}

fn fixture(seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let kp = KeyPair::generate(&mut rng);
    let requester = Address::from_byte(0xd0);
    let mut chain = Chain::deploy(
        HitContract::new(PhaseWindows {
            commit_timeout: Some(8),
            reveal: 2,
            evaluate: 2,
        }),
        0,
        GasSchedule::istanbul(),
    );
    chain.ledger.mint(requester, BUDGET);
    chain.submit(
        requester,
        HitMessage::Publish(PublishParams {
            n: 4,
            budget: BUDGET,
            k: 3,
            range: PlaintextRange::binary(),
            theta: 2,
            ek: kp.ek,
            comm_gs: Commitment([7u8; 32]),
            task_digest: [1u8; 32],
        }),
    );
    chain.advance_round_fifo();
    assert_eq!(chain.contract().phase(), Phase::Commit);
    Fixture {
        rng,
        chain,
        requester,
    }
}

fn commit_msg(rng: &mut StdRng, tag: u8) -> HitMessage {
    let key = CommitmentKey::random(rng);
    HitMessage::Commit {
        commitment: Commitment::commit(&[tag], &key),
    }
}

/// Who won the K=3 slots when two honest workers hold slots 1–2 and an
/// honest straggler races an adversarial front-runner for the last one.
fn race_winners(seed: u64) -> (Vec<Address>, usize) {
    let mut f = fixture(seed);
    let honest: Vec<Address> = (1..=3).map(Address::from_byte).collect();
    let attacker = Address::from_byte(0xaa);
    // Two honest commits land first and are mined FIFO.
    for (i, w) in honest[..2].iter().enumerate() {
        let msg = commit_msg(&mut f.rng, i as u8);
        f.chain.submit(*w, msg);
    }
    f.chain.advance_round_fifo();
    // Round 2: the honest straggler submits; the attacker, watching the
    // mempool, submits after — but its front-running policy reorders
    // delivery so the attacker executes first and takes the last slot.
    let msg = commit_msg(&mut f.rng, 10);
    f.chain.submit(honest[2], msg);
    let msg = commit_msg(&mut f.rng, 11);
    f.chain.submit(attacker, msg);
    let mut policy = FrontRunPolicy::new(attacker);
    f.chain.advance_round(&mut policy);
    let winners = f.chain.contract().committed_workers().to_vec();
    let reverted = f
        .chain
        .receipts()
        .filter(|r| matches!(r.status, TxStatus::Reverted(_)))
        .count();
    (winners, reverted)
}

#[test]
fn front_runner_steals_the_last_slot() {
    let (winners, reverted) = race_winners(0x5eed);
    assert_eq!(winners.len(), 3, "the task fills exactly");
    assert!(
        winners.contains(&Address::from_byte(0xaa)),
        "the front-runner must win the race under its policy"
    );
    assert!(
        !winners.contains(&Address::from_byte(3)),
        "the honest straggler lost the slot"
    );
    // The loser's commit reverted with TaskFull — it was delivered, not
    // dropped.
    assert_eq!(reverted, 1);
}

#[test]
fn race_outcome_is_deterministic_under_a_fixed_seed() {
    let a = race_winners(0x1234);
    let b = race_winners(0x1234);
    assert_eq!(a.0, b.0, "same seed, same winners");
    assert_eq!(a.1, b.1, "same seed, same revert count");
    // Under honest FIFO (no front-running) the straggler keeps the slot:
    // same submissions, different policy, different outcome.
    let mut f = fixture(0x1234);
    let honest: Vec<Address> = (1..=3).map(Address::from_byte).collect();
    let attacker = Address::from_byte(0xaa);
    for (i, w) in honest[..2].iter().enumerate() {
        let msg = commit_msg(&mut f.rng, i as u8);
        f.chain.submit(*w, msg);
    }
    f.chain.advance_round_fifo();
    let msg = commit_msg(&mut f.rng, 10);
    f.chain.submit(honest[2], msg);
    let msg = commit_msg(&mut f.rng, 11);
    f.chain.submit(attacker, msg);
    f.chain.advance_round(&mut FifoPolicy);
    let winners = f.chain.contract().committed_workers().to_vec();
    assert!(winners.contains(&honest[2]));
    assert!(!winners.contains(&attacker));
}

#[test]
fn full_block_defers_pending_txs_instead_of_dropping() {
    let mut f = fixture(0xcafe);
    // Cap blocks so roughly one commit (~47k gas) fits per block.
    let mut chain = std::mem::replace(
        &mut f.chain,
        Chain::deploy(HitContract::default(), 0, GasSchedule::istanbul()),
    )
    .with_block_gas_limit(60_000);
    let workers: Vec<Address> = (1..=3).map(Address::from_byte).collect();
    for (i, w) in workers.iter().enumerate() {
        let msg = commit_msg(&mut f.rng, i as u8);
        chain.submit(*w, msg);
    }
    // First capped block: one commit lands, two defer into the mempool.
    let block = chain.advance_round_fifo();
    assert_eq!(block.receipts.len(), 1);
    assert_eq!(chain.mempool_len(), 2, "overflow must defer, not drop");
    chain.advance_round_fifo();
    assert_eq!(chain.mempool_len(), 1);
    chain.advance_round_fifo();
    assert_eq!(chain.mempool_len(), 0);
    // All three eventually committed, in submission order.
    let committed = chain.contract().committed_workers().to_vec();
    assert_eq!(committed, workers);
    assert_eq!(chain.contract().phase(), Phase::Reveal);
    // Nothing was lost to the cap: every submitted commit has a receipt.
    let commit_receipts = chain.receipts().filter(|r| r.label == "commit").count();
    assert_eq!(commit_receipts, 3);
    let _ = f.requester;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Worker churn under a front-running scheduler never strands
    /// escrow: departures mid-round (a worker that committed but left
    /// before revealing) settle as `⊥` and their shares flow back to
    /// the requester. Across random seeds and departure rates, every
    /// HIT settles, every instance escrow drains to zero, the ledger
    /// conserves total supply, and each budget splits exactly into
    /// worker rewards plus requester refunds.
    #[test]
    fn churn_under_front_running_never_strands_escrow(
        seed in 1u64..400,
        depart_pct in 10u32..40,
    ) {
        const HITS: usize = 10;
        const BUDGET_PER_HIT: u128 = 3_000;
        let config = MarketConfig {
            hits: HITS,
            spawn_per_block: 2,
            workers: 12,
            worker_capacity: 3,
            budget: BUDGET_PER_HIT,
            policy: MarketPolicy::FrontRun,
            max_blocks: 500,
            seed,
            econ: EconConfig {
                enabled: true,
                churn: Some(ChurnParams {
                    join_rate: 0.3,
                    depart_rate: depart_pct as f64 / 100.0,
                    max_events_per_block: 2,
                    min_pool: 4,
                    max_pool: 64,
                }),
                ..EconConfig::default()
            },
            ..MarketConfig::default()
        };
        let minted = BUDGET_PER_HIT * HITS as u128;
        let (report, chain) = MarketSim::new(config).run_keeping_chain();
        prop_assert_eq!(report.hits_unfinished, 0, "the horizon must drain");
        prop_assert_eq!(report.hits_published, HITS);
        // Conservation: churn and front-running move coins, never
        // destroy them.
        prop_assert_eq!(chain.ledger.total_supply(), minted);
        // No stranded escrow: every instance settled and drained.
        for id in chain.contract().hit_ids() {
            let hit = chain.contract().hit(id).expect("listed instance exists");
            prop_assert!(hit.is_settled(), "hit #{} left open", id);
            let escrow = chain.contract().hit_address(id).unwrap();
            prop_assert_eq!(
                chain.ledger.balance(&escrow),
                0,
                "hit #{} stranded coins in escrow",
                id
            );
        }
        // Every frozen budget split exactly into rewards + refunds.
        prop_assert_eq!(
            report.rewards_paid + report.refunds,
            BUDGET_PER_HIT * report.hits_published as u128
        );
        let econ = report.econ.expect("churn implies econ on");
        prop_assert!(
            econ.workers_departed > 0 || econ.workers_joined > 0,
            "churn must actually fire for the invariant to mean anything"
        );
    }
}
