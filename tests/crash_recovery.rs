//! Crash-recovery differential tests for the persistent block store
//! (`dragoon_chain::store`).
//!
//! A persisted market run appends every produced block's executed
//! transaction list to `blocks.log` and writes full state snapshots on
//! a cadence. These tests pin the store's contract: **recovery from
//! newest-snapshot + block-log tail is bit-identical to the live run**
//! — the whole committed state image (registry shards, ledger,
//! receipts, events) byte for byte — at 1, 4 and 8 executor threads,
//! with snapshots, without snapshots (whole-log replay from genesis),
//! and with a torn final record (discarded, never half-applied).

use dragoon_sim::{recover_market_chain, MarketConfig, MarketSim, PersistConfig};
use std::fs::OpenOptions;
use std::path::PathBuf;

/// A unique scratch directory per test so parallel test binaries (and
/// reruns) never collide; wiped at the end of each test body.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dragoon-crash-{}-{name}", std::process::id()))
}

/// A small but structurally complete market: overbooked commit races,
/// gas-capped blocks, batched settlement, the default adversarial
/// behaviour mix.
fn base(seed: u64, dir: PathBuf, snapshot_every: u64) -> MarketConfig {
    MarketConfig {
        hits: 12,
        spawn_per_block: 3,
        workers: 14,
        seed,
        persist: Some(PersistConfig {
            snapshot_every,
            ..PersistConfig::new(dir)
        }),
        ..MarketConfig::default()
    }
}

/// Runs the market with persistence on, recovers from the store and
/// returns `(live_image, recovered_image, live_round)`.
fn run_and_recover(config: MarketConfig) -> (Vec<u8>, Vec<u8>, u64) {
    let (report, chain) = MarketSim::new(config.clone()).run_keeping_chain();
    assert_eq!(report.hits_unfinished, 0, "the scenario must drain");
    let recovered = recover_market_chain(&config).expect("recovery must succeed");
    (chain.state_image(), recovered.state_image(), chain.round())
}

/// The headline differential: replay from latest snapshot + block tail
/// lands on the exact bytes of the live run's committed state, for the
/// serial executor and two parallel widths. The recovered image is also
/// identical *across* thread counts — recovery composes with the
/// parallel-equivalence guarantee.
#[test]
fn recovery_is_bit_identical_across_thread_counts() {
    let mut images = Vec::new();
    for threads in [1usize, 4, 8] {
        let dir = scratch(&format!("threads{threads}"));
        let config = MarketConfig {
            exec_threads: threads,
            ..base(0xc4a5, dir.clone(), 8)
        };
        let (live, recovered, _) = run_and_recover(config);
        assert_eq!(
            live, recovered,
            "recovered state must be byte-identical at {threads} threads"
        );
        images.push(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(images[0], images[1], "1 vs 4 threads");
    assert_eq!(images[0], images[2], "1 vs 8 threads");
}

/// The env-driven thread budget (CI sweeps `DRAGOON_THREADS=1/4`)
/// resolves through the same path and must also recover exactly.
#[test]
fn recovery_is_bit_identical_under_env_thread_budget() {
    let dir = scratch("env");
    let (live, recovered, _) = run_and_recover(base(0xc4a5, dir.clone(), 8));
    assert_eq!(live, recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// With the snapshot cadence off the whole log replays from genesis —
/// the longest possible recovery path — and still lands on the bytes.
#[test]
fn recovery_without_snapshots_replays_the_whole_log() {
    let dir = scratch("nosnap");
    let (live, recovered, _) = run_and_recover(base(0x1095, dir.clone(), 0));
    assert_eq!(live, recovered);
    let snapshots = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with("snapshot-")
        })
        .count();
    assert_eq!(snapshots, 0, "cadence 0 must write no snapshots");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A tight cadence leaves several snapshots on disk; recovery must pick
/// the newest and replay only the short tail behind it.
#[test]
fn recovery_uses_the_newest_snapshot() {
    let dir = scratch("dense");
    let (live, recovered, live_round) = run_and_recover(base(0xdeed, dir.clone(), 4));
    assert_eq!(live, recovered);
    let snapshots: Vec<String> = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("snapshot-"))
        .collect();
    assert!(
        snapshots.len() as u64 >= live_round / 4,
        "cadence 4 over {live_round} blocks must leave snapshots: {snapshots:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn write: a crash mid-append leaves a truncated final record. The
/// log scan must detect and discard it — recovery comes up one block
/// behind the live run, never with a half-applied block.
#[test]
fn torn_final_record_is_discarded_not_half_applied() {
    let dir = scratch("torn");
    // No snapshots, so every recovered byte comes from the log replay
    // and the final round is a pure function of intact records.
    let config = base(0x70a9, dir.clone(), 0);
    let (report, chain) = MarketSim::new(config.clone()).run_keeping_chain();
    assert_eq!(report.hits_unfinished, 0);
    let log = dir.join("blocks.log");
    let intact_len = std::fs::metadata(&log).expect("log exists").len();
    // Tear the final record: cut into its payload (every record is
    // 8 header bytes + a payload much larger than 5).
    OpenOptions::new()
        .write(true)
        .open(&log)
        .expect("log opens")
        .set_len(intact_len - 5)
        .expect("truncate");
    let recovered = recover_market_chain(&config).expect("a torn tail must not fail recovery");
    assert_eq!(
        recovered.round(),
        chain.round() - 1,
        "exactly the torn final block is lost"
    );
    assert_eq!(
        recovered.blocks().len(),
        chain.blocks().len() - 1,
        "no half-applied block may appear"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bit rot: a flipped byte inside the final record trips its checksum;
/// the record (and only that record) is discarded.
#[test]
fn corrupt_final_record_is_discarded_by_checksum() {
    let dir = scratch("bitrot");
    let config = base(0xb17, dir.clone(), 0);
    let (report, chain) = MarketSim::new(config.clone()).run_keeping_chain();
    assert_eq!(report.hits_unfinished, 0);
    let log = dir.join("blocks.log");
    let mut bytes = std::fs::read(&log).expect("log reads");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&log, &bytes).expect("log rewrites");
    let recovered = recover_market_chain(&config).expect("bit rot must not fail recovery");
    assert_eq!(
        recovered.round(),
        chain.round() - 1,
        "exactly the corrupt final block is lost"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Pipelined lifecycle: background writer, incremental snapshots, log
// compaction and overlapped settlement verification all on at once.
// ---------------------------------------------------------------------------

/// The full pipeline (`PersistConfig::pipelined`) with a given snapshot
/// cadence.
fn pipelined(seed: u64, dir: PathBuf, snapshot_every: u64) -> MarketConfig {
    MarketConfig {
        hits: 12,
        spawn_per_block: 3,
        workers: 14,
        seed,
        persist: Some(PersistConfig {
            snapshot_every,
            ..PersistConfig::pipelined(dir)
        }),
        ..MarketConfig::default()
    }
}

/// The round of the newest `delta-*.bin` artifact in a store dir.
fn newest_delta(dir: &PathBuf) -> Option<(u64, PathBuf)> {
    std::fs::read_dir(dir)
        .expect("store dir exists")
        .map(|e| e.unwrap().path())
        .filter_map(|p| {
            let name = p.file_name()?.to_str()?.to_owned();
            let round = name
                .strip_prefix("delta-")?
                .strip_suffix(".bin")?
                .parse::<u64>()
                .ok()?;
            Some((round, p))
        })
        .max_by_key(|(round, _)| *round)
}

/// The headline pipelined differential: with the background writer,
/// incremental snapshots, compaction and overlapped verification all
/// enabled, recovery composes base + deltas + log tail to the exact
/// bytes of the live run — and the recovered image is identical across
/// executor thread counts.
#[test]
fn pipelined_recovery_is_bit_identical_across_thread_counts() {
    let mut images = Vec::new();
    for threads in [1usize, 4] {
        let dir = scratch(&format!("pipe-threads{threads}"));
        let config = MarketConfig {
            exec_threads: threads,
            ..pipelined(0xc4a5, dir.clone(), 8)
        };
        let (live, recovered, _) = run_and_recover(config);
        assert_eq!(
            live, recovered,
            "pipelined recovery must be byte-identical at {threads} threads"
        );
        images.push(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(images[0], images[1], "pipelined: 1 vs 4 threads");
}

/// Kill between handoff and append: the round loop hands a frame to the
/// background writer and the process dies before (or mid-) append. After
/// the drain the on-disk state is identical to the synchronous writer's,
/// so the emulation is a torn final record under the pipelined config —
/// snapshots off so the log carries the whole history. Recovery comes up
/// exactly one block behind, never with a half-applied block.
#[test]
fn pipelined_torn_tail_recovers_to_previous_block() {
    let dir = scratch("pipe-torn");
    let config = pipelined(0x70a9, dir.clone(), 0);
    let (report, chain) = MarketSim::new(config.clone()).run_keeping_chain();
    assert_eq!(report.hits_unfinished, 0);
    let log = dir.join("blocks.log");
    let intact_len = std::fs::metadata(&log).expect("log exists").len();
    OpenOptions::new()
        .write(true)
        .open(&log)
        .expect("log opens")
        .set_len(intact_len - 5)
        .expect("truncate");
    let recovered = recover_market_chain(&config).expect("a torn tail must not fail recovery");
    assert_eq!(
        recovered.round(),
        chain.round() - 1,
        "exactly the torn final block is lost"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash mid-incremental-snapshot, before the atomic rename: the store
/// is left with a stale `.tmp` file and no new artifact, and (without
/// compaction) the log still carries every record — recovery ignores the
/// tmp file and replays to the exact live bytes. Emulated by demoting
/// the newest published delta back to its pre-rename tmp name.
#[test]
fn pipelined_crash_before_delta_rename_recovers_exactly() {
    let dir = scratch("pipe-tmpdelta");
    let config = MarketConfig {
        persist: Some(PersistConfig {
            snapshot_every: 4,
            compact_log: false, // keep the whole log: deltas are redundant
            ..PersistConfig::pipelined(dir.clone())
        }),
        ..pipelined(0x1d3a, dir.clone(), 4)
    };
    let (report, chain) = MarketSim::new(config.clone()).run_keeping_chain();
    assert_eq!(report.hits_unfinished, 0);
    let (_, path) = newest_delta(&dir).expect("cadence 4 + incremental must leave deltas");
    std::fs::rename(&path, path.with_extension("tmp")).expect("demote to tmp");
    let recovered = recover_market_chain(&config).expect("a stale tmp must not fail recovery");
    assert_eq!(
        chain.state_image(),
        recovered.state_image(),
        "recovery must compose the surviving artifacts + log to the live bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bit rot inside a published delta trips its checksum; composition
/// stops at the last good artifact and the (uncompacted) log replays the
/// rest — still bit-identical. A truncated delta (torn artifact write)
/// degrades the same way.
#[test]
fn pipelined_corrupt_delta_degrades_to_log_replay() {
    let dir = scratch("pipe-baddelta");
    let config = MarketConfig {
        persist: Some(PersistConfig {
            snapshot_every: 4,
            compact_log: false,
            ..PersistConfig::pipelined(dir.clone())
        }),
        ..pipelined(0xde17a, dir.clone(), 4)
    };
    let (report, chain) = MarketSim::new(config.clone()).run_keeping_chain();
    assert_eq!(report.hits_unfinished, 0);
    let (_, path) = newest_delta(&dir).expect("cadence 4 + incremental must leave deltas");
    // Flip a payload byte: checksum mismatch.
    let mut bytes = std::fs::read(&path).expect("delta reads");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&path, &bytes).expect("delta rewrites");
    let recovered = recover_market_chain(&config).expect("a corrupt delta must not fail recovery");
    assert_eq!(
        chain.state_image(),
        recovered.state_image(),
        "bit rot in a delta must degrade to log replay, not corrupt state"
    );
    // Torn artifact: same file cut in half.
    bytes.truncate(bytes.len() / 2);
    std::fs::write(&path, &bytes).expect("delta rewrites");
    let recovered = recover_market_chain(&config).expect("a torn delta must not fail recovery");
    assert_eq!(
        chain.state_image(),
        recovered.state_image(),
        "a torn delta must degrade to log replay, not corrupt state"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Post-compaction recovery: with `compact_log` on the log is truncated
/// at every artifact publish, so recovery leans on the artifact chain
/// (full base + deltas) plus only the short post-artifact tail — and
/// still lands on the live bytes. The log stays bounded by one snapshot
/// interval and old artifacts are pruned at each full rebase.
#[test]
fn pipelined_post_compaction_recovery_is_bit_identical() {
    let dir = scratch("pipe-compact");
    let config = pipelined(0xc03a, dir.clone(), 4);
    let (report, chain) = MarketSim::new(config.clone()).run_keeping_chain();
    assert_eq!(report.hits_unfinished, 0);
    let stats = report
        .persist
        .expect("persisted run must report store stats");
    assert!(stats.compactions > 0, "cadence 4 must compact: {stats:?}");
    assert!(
        stats.log_bytes_truncated > 0,
        "compaction must reclaim log bytes: {stats:?}"
    );
    let log_len = std::fs::metadata(dir.join("blocks.log"))
        .expect("log exists")
        .len();
    assert!(
        log_len < stats.log_bytes_written,
        "the compacted log ({log_len} bytes) must be a strict subset of \
         everything written ({} bytes)",
        stats.log_bytes_written
    );
    assert!(
        stats.delta_snapshots > 0,
        "incremental cadence must publish deltas: {stats:?}"
    );
    let recovered = recover_market_chain(&config).expect("recovery must succeed");
    assert_eq!(
        chain.state_image(),
        recovered.state_image(),
        "post-compaction recovery must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
