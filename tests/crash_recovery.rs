//! Crash-recovery differential tests for the persistent block store
//! (`dragoon_chain::store`).
//!
//! A persisted market run appends every produced block's executed
//! transaction list to `blocks.log` and writes full state snapshots on
//! a cadence. These tests pin the store's contract: **recovery from
//! newest-snapshot + block-log tail is bit-identical to the live run**
//! — the whole committed state image (registry shards, ledger,
//! receipts, events) byte for byte — at 1, 4 and 8 executor threads,
//! with snapshots, without snapshots (whole-log replay from genesis),
//! and with a torn final record (discarded, never half-applied).

use dragoon_sim::{recover_market_chain, MarketConfig, MarketSim, PersistConfig};
use std::fs::OpenOptions;
use std::path::PathBuf;

/// A unique scratch directory per test so parallel test binaries (and
/// reruns) never collide; wiped at the end of each test body.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dragoon-crash-{}-{name}", std::process::id()))
}

/// A small but structurally complete market: overbooked commit races,
/// gas-capped blocks, batched settlement, the default adversarial
/// behaviour mix.
fn base(seed: u64, dir: PathBuf, snapshot_every: u64) -> MarketConfig {
    MarketConfig {
        hits: 12,
        spawn_per_block: 3,
        workers: 14,
        seed,
        persist: Some(PersistConfig {
            dir,
            snapshot_every,
        }),
        ..MarketConfig::default()
    }
}

/// Runs the market with persistence on, recovers from the store and
/// returns `(live_image, recovered_image, live_round)`.
fn run_and_recover(config: MarketConfig) -> (Vec<u8>, Vec<u8>, u64) {
    let (report, chain) = MarketSim::new(config.clone()).run_keeping_chain();
    assert_eq!(report.hits_unfinished, 0, "the scenario must drain");
    let recovered = recover_market_chain(&config).expect("recovery must succeed");
    (chain.state_image(), recovered.state_image(), chain.round())
}

/// The headline differential: replay from latest snapshot + block tail
/// lands on the exact bytes of the live run's committed state, for the
/// serial executor and two parallel widths. The recovered image is also
/// identical *across* thread counts — recovery composes with the
/// parallel-equivalence guarantee.
#[test]
fn recovery_is_bit_identical_across_thread_counts() {
    let mut images = Vec::new();
    for threads in [1usize, 4, 8] {
        let dir = scratch(&format!("threads{threads}"));
        let config = MarketConfig {
            exec_threads: threads,
            ..base(0xc4a5, dir.clone(), 8)
        };
        let (live, recovered, _) = run_and_recover(config);
        assert_eq!(
            live, recovered,
            "recovered state must be byte-identical at {threads} threads"
        );
        images.push(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(images[0], images[1], "1 vs 4 threads");
    assert_eq!(images[0], images[2], "1 vs 8 threads");
}

/// The env-driven thread budget (CI sweeps `DRAGOON_THREADS=1/4`)
/// resolves through the same path and must also recover exactly.
#[test]
fn recovery_is_bit_identical_under_env_thread_budget() {
    let dir = scratch("env");
    let (live, recovered, _) = run_and_recover(base(0xc4a5, dir.clone(), 8));
    assert_eq!(live, recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// With the snapshot cadence off the whole log replays from genesis —
/// the longest possible recovery path — and still lands on the bytes.
#[test]
fn recovery_without_snapshots_replays_the_whole_log() {
    let dir = scratch("nosnap");
    let (live, recovered, _) = run_and_recover(base(0x1095, dir.clone(), 0));
    assert_eq!(live, recovered);
    let snapshots = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with("snapshot-")
        })
        .count();
    assert_eq!(snapshots, 0, "cadence 0 must write no snapshots");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A tight cadence leaves several snapshots on disk; recovery must pick
/// the newest and replay only the short tail behind it.
#[test]
fn recovery_uses_the_newest_snapshot() {
    let dir = scratch("dense");
    let (live, recovered, live_round) = run_and_recover(base(0xdeed, dir.clone(), 4));
    assert_eq!(live, recovered);
    let snapshots: Vec<String> = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("snapshot-"))
        .collect();
    assert!(
        snapshots.len() as u64 >= live_round / 4,
        "cadence 4 over {live_round} blocks must leave snapshots: {snapshots:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn write: a crash mid-append leaves a truncated final record. The
/// log scan must detect and discard it — recovery comes up one block
/// behind the live run, never with a half-applied block.
#[test]
fn torn_final_record_is_discarded_not_half_applied() {
    let dir = scratch("torn");
    // No snapshots, so every recovered byte comes from the log replay
    // and the final round is a pure function of intact records.
    let config = base(0x70a9, dir.clone(), 0);
    let (report, chain) = MarketSim::new(config.clone()).run_keeping_chain();
    assert_eq!(report.hits_unfinished, 0);
    let log = dir.join("blocks.log");
    let intact_len = std::fs::metadata(&log).expect("log exists").len();
    // Tear the final record: cut into its payload (every record is
    // 8 header bytes + a payload much larger than 5).
    OpenOptions::new()
        .write(true)
        .open(&log)
        .expect("log opens")
        .set_len(intact_len - 5)
        .expect("truncate");
    let recovered = recover_market_chain(&config).expect("a torn tail must not fail recovery");
    assert_eq!(
        recovered.round(),
        chain.round() - 1,
        "exactly the torn final block is lost"
    );
    assert_eq!(
        recovered.blocks().len(),
        chain.blocks().len() - 1,
        "no half-applied block may appear"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bit rot: a flipped byte inside the final record trips its checksum;
/// the record (and only that record) is discarded.
#[test]
fn corrupt_final_record_is_discarded_by_checksum() {
    let dir = scratch("bitrot");
    let config = base(0xb17, dir.clone(), 0);
    let (report, chain) = MarketSim::new(config.clone()).run_keeping_chain();
    assert_eq!(report.hits_unfinished, 0);
    let log = dir.join("blocks.log");
    let mut bytes = std::fs::read(&log).expect("log reads");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&log, &bytes).expect("log rewrites");
    let recovered = recover_market_chain(&config).expect("bit rot must not fail recovery");
    assert_eq!(
        recovered.round(),
        chain.round() - 1,
        "exactly the corrupt final block is lost"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
