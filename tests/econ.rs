//! The econ-layer integration suite: determinism, convergence and
//! adversary extraction for the `dragoon-econ` market-economics
//! subsystem, end to end through the marketplace engine.
//!
//! * **Thread-count determinism** — a fully loaded econ market
//!   (reputation ordering + gating, dynamic pricing, churn, cartel and
//!   sybils) produces byte-identical market *and* econ JSON at 1, 2 and
//!   8 executor threads: reputation ordering, price paths and churn are
//!   functions of committed chain state only.
//! * **Observe-only differential** — passive econ changes nothing; the
//!   market report is byte-identical to an econ-disabled run (the same
//!   differential the throughput bench prices overhead with).
//! * **Pricing convergence** — against a reservation-wage worker pool,
//!   a market opened underpriced discovers a clearing price: the
//!   windowed fill rate ends inside the tolerance band and the price
//!   lifts off its floor without pinning to the ceiling.
//! * **Cartel extraction** — a golden-withholding cartel (strict θ,
//!   off-chain pre-evaluation) pushes honest-worker payout measurably
//!   below the honest baseline and claws the difference back as
//!   refunds.
//! * **Sybil farming** — reputation-farming sybils ride farmed scores
//!   into defection; the metrics record both the extraction and the
//!   proof-backed rejections that answer it.

use dragoon_core::workload::AnswerModel;
use dragoon_econ::{ChurnParams, EconConfig, PricingParams, ReputationParams};
use dragoon_protocol::WorkerBehavior;
use dragoon_sim::{run_market, MarketConfig};

/// A fully loaded econ scenario: every feature on at once.
fn full_econ_config(seed: u64) -> MarketConfig {
    MarketConfig {
        hits: 30,
        spawn_per_block: 2,
        workers: 24,
        worker_capacity: 4,
        seed,
        max_blocks: 500,
        econ: EconConfig {
            enabled: true,
            pricing: Some(PricingParams {
                initial: 1_200,
                min: 600,
                max: 12_000,
                ..PricingParams::default()
            }),
            churn: Some(ChurnParams::default()),
            reservation_wages: true,
            cartel_requesters: 6,
            sybil_workers: 4,
            ..EconConfig::default()
        },
        ..MarketConfig::default()
    }
}

/// Reputation ordering (and every other econ input) is deterministic
/// across executor thread counts: the serial baseline and the 2- and
/// 8-thread runs must produce byte-identical market and econ JSON.
#[test]
fn econ_market_identical_across_thread_counts() {
    let base = MarketConfig {
        exec_threads: 1,
        ..full_econ_config(0xec01)
    };
    let serial = run_market(base.clone());
    assert!(serial.econ.is_some(), "econ layer must be live");
    assert!(serial.hits_published > 0);
    for threads in [2, 8] {
        let parallel = run_market(MarketConfig {
            exec_threads: threads,
            ..base.clone()
        });
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "market reports must be identical at {threads} threads"
        );
        assert_eq!(
            serial.econ_json(),
            parallel.econ_json(),
            "econ reports (reputation ordering, prices, churn) must be \
             identical at {threads} threads"
        );
    }
}

/// The same seed twice is the same market: the whole econ layer —
/// including the churn process's private RNG stream — replays exactly.
#[test]
fn econ_market_reproducible_for_a_seed() {
    let a = run_market(full_econ_config(0xec02));
    let b = run_market(full_econ_config(0xec02));
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.econ_json(), b.econ_json());
}

/// Passive (observe-only) econ influences nothing: the market report is
/// byte-identical to an econ-disabled run, while the reputation book
/// still absorbed every settlement receipt.
#[test]
fn observe_only_econ_matches_disabled() {
    let base = MarketConfig {
        hits: 25,
        workers: 20,
        seed: 0xec03,
        ..MarketConfig::default()
    };
    let off = run_market(base.clone());
    let on = run_market(MarketConfig {
        econ: EconConfig::observe_only(),
        ..base
    });
    assert_eq!(
        off.to_json(),
        on.to_json(),
        "observe-only econ must not change the market"
    );
    let econ = on.econ.expect("layer reports in observe-only mode");
    assert!(econ.rep_receipts > 0, "receipts still feed the book");
    assert_eq!(econ.gated_commits, 0);
    assert_eq!(econ.declined_commits, 0);
    assert!(off.econ.is_none());
}

/// Dynamic pricing converges against reservation-wage supply: opened
/// well under the pool's wage spread, the controller raises `B` until
/// the market clears and ends with the windowed fill rate inside the
/// tolerance band, off the floor and off the ceiling.
#[test]
fn dynamic_pricing_converges_to_a_clearing_band() {
    let report = run_market(MarketConfig {
        hits: 70,
        spawn_per_block: 1,
        workers: 40,
        worker_capacity: 4,
        seed: 0xec04,
        max_blocks: 800,
        econ: EconConfig {
            enabled: true,
            // No gating/ordering noise: isolate the price↔supply loop.
            reputation: ReputationParams {
                order_by_score: false,
                gate_commits: false,
                ..ReputationParams::default()
            },
            pricing: Some(PricingParams {
                initial: 900,
                min: 600,
                max: 24_000,
                target_fill: 0.9,
                ..PricingParams::default()
            }),
            reservation_wages: true,
            ..EconConfig::default()
        },
        ..MarketConfig::default()
    });
    assert_eq!(report.hits_unfinished, 0, "the horizon must drain");
    let econ = report.econ.expect("econ on");
    assert!(
        econ.price_adjustments > 0,
        "the controller must actually steer"
    );
    assert!(
        econ.price_final > 900,
        "underpriced opening must be corrected upward (final {})",
        econ.price_final
    );
    assert!(
        econ.price_final < 24_000,
        "the price must not pin to the ceiling"
    );
    assert!(
        econ.fill_rate_recent >= 0.7,
        "the windowed fill rate must end inside the tolerance band \
         (got {:.3})",
        econ.fill_rate_recent
    );
    assert!(
        econ.declined_commits > 0,
        "reservation wages must bite for the loop to mean anything"
    );
}

/// The golden-withholding cartel extracts from honest workers: with the
/// same seed and scenario, turning every requester into a cartel member
/// (strict θ = |G|, off-chain pre-evaluation, withheld goldens on clean
/// HITs) lowers the honest-worker payout measurably below the honest
/// baseline and claws the difference back into requester refunds.
#[test]
fn cartel_lowers_honest_worker_payout_vs_baseline() {
    // θ = 2 < |G| = 4 leaves honest requesters lenient (they can only
    // reject χ < 2); the cartel tightens to θ = 4 where any gold miss
    // is rejectable. Noisy-but-honest workers make misses common.
    let scenario = |cartel: usize| MarketConfig {
        hits: 24,
        spawn_per_block: 3,
        workers: 20,
        worker_capacity: 4,
        questions: 6,
        golds: 4,
        k: 3,
        theta: 2,
        behavior_mix: vec![(
            WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.85 }),
            1,
        )],
        seed: 0xec05,
        max_blocks: 400,
        econ: EconConfig {
            enabled: true,
            reputation: ReputationParams {
                // No gating: keep the worker side identical so the
                // payout delta is the cartel's alone.
                order_by_score: false,
                gate_commits: false,
                ..ReputationParams::default()
            },
            cartel_requesters: cartel,
            ..EconConfig::default()
        },
        ..MarketConfig::default()
    };
    let baseline = run_market(scenario(0));
    let cartel = run_market(scenario(24));
    assert_eq!(baseline.hits_unfinished, 0);
    assert_eq!(cartel.hits_unfinished, 0);
    let base_econ = baseline.econ.as_ref().expect("econ on");
    let cartel_econ = cartel.econ.as_ref().expect("econ on");
    assert!(
        cartel_econ.cartel_rejections > 0,
        "the strict-θ cartel must land rejections the lenient baseline \
         cannot ({:?} rejections)",
        cartel_econ.cartel_rejections
    );
    assert!(
        cartel_econ.honest_paid < base_econ.honest_paid,
        "cartel must lower honest-worker payout (baseline {}, cartel {})",
        base_econ.honest_paid,
        cartel_econ.honest_paid
    );
    assert!(
        cartel_econ.cartel_refunds > base_econ.honest_refunds,
        "the clawed-back shares must show up as cartel refunds \
         (baseline honest refunds {}, cartel refunds {})",
        base_econ.honest_refunds,
        cartel_econ.cartel_refunds
    );
    // The extraction is the payout delta: what workers lost, the cartel
    // (plus rounding) got back.
    assert!(cartel.rewards_paid < baseline.rewards_paid);
    assert!(cartel.refunds > baseline.refunds);
}

/// Reputation-farming sybils: farmed scores buy commit slots
/// (reputation ordering), defection converts them into zero-effort
/// submissions on well-paying HITs, and the metrics record both the
/// extraction and the rejections that answer it.
#[test]
fn sybil_farming_extracts_and_gets_caught() {
    let report = run_market(MarketConfig {
        hits: 40,
        spawn_per_block: 2,
        workers: 16,
        worker_capacity: 4,
        seed: 0xec06,
        max_blocks: 500,
        econ: EconConfig {
            enabled: true,
            sybil_workers: 4,
            ..EconConfig::default()
        },
        ..MarketConfig::default()
    });
    assert_eq!(report.hits_unfinished, 0);
    let econ = report.econ.expect("econ on");
    assert!(
        econ.sybil_paid > 0,
        "farming must earn the sybils real payouts"
    );
    assert!(
        econ.sybil_rejected > 0,
        "defection (random-bot work above the reward threshold) must \
         draw proof-backed rejections"
    );
    assert!(econ.honest_paid > 0, "the market still serves honest work");
}
