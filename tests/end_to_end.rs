//! Workspace-level end-to-end tests: the full Dragoon stack (crypto →
//! chain → contract → protocol) under honest and adversarial conditions.

use dragoon_chain::{AdversarialPolicy, DelayVictimPolicy, GasSchedule, Scheduled};
use dragoon_contract::{RejectReason, Settlement};
use dragoon_core::workload::{generate_workload, imagenet_workload, AnswerModel};
use dragoon_crypto::elgamal::PlaintextRange;
use dragoon_protocol::{driver, WorkerBehavior};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn honest(acc: f64) -> WorkerBehavior {
    WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: acc })
}

#[test]
fn imagenet_task_full_run() {
    let mut rng = StdRng::seed_from_u64(1);
    let report = driver::run(
        driver::RunConfig {
            workload: imagenet_workload(4_000_000, &mut rng),
            behaviors: vec![honest(1.0), honest(0.95), honest(0.92), honest(0.0)],
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );
    // The three diligent workers are paid; the spam worker is rejected
    // via PoQoEA (with overwhelming probability at accuracy 0).
    let paid = report
        .settlements
        .values()
        .filter(|s| **s == Settlement::Paid)
        .count();
    assert_eq!(paid, 3);
    assert_eq!(report.gas.rejects.len(), 1);
    assert_eq!(report.collected.len(), 3);
}

#[test]
fn non_binary_task_with_wide_range() {
    // A 4-option task (range {0..3}) with 8 golds and 5 workers.
    let mut rng = StdRng::seed_from_u64(2);
    let workload = generate_workload(40, 8, 5, 6, PlaintextRange::new(0, 3), 5_000, &mut rng);
    let report = driver::run(
        driver::RunConfig {
            workload,
            behaviors: vec![honest(1.0); 5],
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );
    assert_eq!(report.collected.len(), 5);
    for w in &report.workers {
        assert_eq!(report.balances[w], 1_000);
    }
}

#[test]
fn single_worker_task() {
    let mut rng = StdRng::seed_from_u64(3);
    let workload = generate_workload(5, 2, 1, 2, PlaintextRange::binary(), 100, &mut rng);
    let report = driver::run(
        driver::RunConfig {
            workload,
            behaviors: vec![honest(1.0)],
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );
    assert_eq!(report.collected.len(), 1);
    assert_eq!(report.balances[&report.workers[0]], 100);
}

#[test]
fn all_attackers_requester_keeps_budget() {
    let mut rng = StdRng::seed_from_u64(4);
    let report = driver::run(
        driver::RunConfig {
            workload: imagenet_workload(4_000_000, &mut rng),
            behaviors: vec![
                honest(0.0),
                WorkerBehavior::CommitNoReveal,
                WorkerBehavior::BadReveal,
                honest(0.0),
            ],
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );
    // Nobody earns; the requester gets the full budget back.
    for w in &report.workers {
        assert_eq!(report.balances[w], 0);
    }
    assert_eq!(report.balances[&report.requester], 4_000_000);
    // Bad revealers are recorded as no-reveal (their opening failed).
    assert!(matches!(
        report.settlements[&report.workers[1]],
        Settlement::Rejected(RejectReason::NoReveal)
    ));
    assert!(matches!(
        report.settlements[&report.workers[2]],
        Settlement::Rejected(RejectReason::NoReveal)
    ));
}

#[test]
fn targeted_delay_cannot_steal_a_slot_forever() {
    // The adversary delays one victim's messages by the maximum one
    // clock period; the victim still lands in the task (synchrony bound).
    let mut rng = StdRng::seed_from_u64(5);
    let workload = imagenet_workload(4_000_000, &mut rng);
    // Victim address: the driver assigns deterministic worker addresses;
    // derive it the same way.
    let victim = dragoon_ledger::Address::from_seed(0x3031_0000);
    let mut policy = DelayVictimPolicy::new(victim);
    let report = driver::run_with_policy(
        driver::RunConfig {
            workload,
            behaviors: vec![honest(1.0); 4],
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut policy,
        &mut rng,
    );
    // All four (including the delayed victim) were eventually paid.
    for w in &report.workers {
        assert_eq!(
            report.balances[w], 1_000_000,
            "worker {w} must be paid despite delays"
        );
    }
}

#[test]
fn chaotic_scheduling_preserves_fairness() {
    // A randomized adversary shuffles and delays half of each round.
    let mut rng = StdRng::seed_from_u64(6);
    let workload = imagenet_workload(4_000_000, &mut rng);
    let mut flip = false;
    let mut policy = AdversarialPolicy::new(move |_round, mut pending: Vec<_>| {
        pending.reverse();
        flip = !flip;
        if flip && pending.len() > 1 {
            let delay = pending.split_off(pending.len() / 2);
            // NOTE: delayed messages reappear next round — within the
            // synchrony bound.
            Scheduled {
                deliver: pending,
                delay,
            }
        } else {
            Scheduled {
                deliver: pending,
                delay: Vec::new(),
            }
        }
    });
    let report = driver::run_with_policy(
        driver::RunConfig {
            workload,
            behaviors: vec![honest(1.0); 4],
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut policy,
        &mut rng,
    );
    for w in &report.workers {
        assert_eq!(report.balances[w], 1_000_000);
    }
    assert_eq!(report.collected.len(), 4);
}

#[test]
fn protocol_completes_under_block_gas_limit() {
    // Ethereum's ~10M block gas limit (the paper's era) fits only ~3 of
    // the 2.6M-gas reveals per block; the fourth spills into the next
    // round. The phase windows absorb the spill and everyone is paid.
    let mut rng = StdRng::seed_from_u64(8);
    let workload = imagenet_workload(4_000_000, &mut rng);
    let report = driver::run(
        driver::RunConfig {
            workload,
            behaviors: vec![honest(1.0); 4],
            schedule: GasSchedule::istanbul(),
            block_gas_limit: Some(10_000_000),
        },
        &mut rng,
    );
    for w in &report.workers {
        assert_eq!(report.balances[w], 1_000_000);
    }
    assert_eq!(report.collected.len(), 4);
    // At least one block actually hit the cap (more than one block
    // carries reveals).
    let reveal_rounds: std::collections::BTreeSet<u64> = report
        .chain
        .receipts()
        .filter(|r| r.label == "reveal")
        .map(|r| r.round)
        .collect();
    assert!(
        reveal_rounds.len() > 1,
        "reveals must have spilled across blocks"
    );
}

#[test]
fn budget_conservation_across_runs() {
    // Whatever the behaviours, coins are conserved: payments + refund =
    // budget.
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let behaviors = vec![
            honest(1.0),
            honest(0.5),
            honest(0.0),
            WorkerBehavior::CommitNoReveal,
        ];
        let report = driver::run(
            driver::RunConfig {
                workload: imagenet_workload(4_000_000, &mut rng),
                behaviors,
                schedule: GasSchedule::istanbul(),
                block_gas_limit: None,
            },
            &mut rng,
        );
        let total: u128 = report.balances.values().sum();
        assert_eq!(total, 4_000_000, "coins must be conserved (seed {seed})");
    }
}

#[test]
fn gas_totals_scale_with_workers() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut totals = Vec::new();
    for k in [2usize, 4, 8] {
        let workload = generate_workload(
            106,
            6,
            k,
            4,
            PlaintextRange::binary(),
            (k as u128) * 1_000_000,
            &mut rng,
        );
        let report = driver::run(
            driver::RunConfig {
                workload,
                behaviors: vec![honest(1.0); k],
                schedule: GasSchedule::istanbul(),
                block_gas_limit: None,
            },
            &mut rng,
        );
        totals.push(report.gas.total());
    }
    assert!(totals[0] < totals[1] && totals[1] < totals[2]);
}

#[test]
fn one_key_pair_serves_many_tasks() {
    // §VI "Off-chain costs": the requester manages a single key pair
    // across all her tasks, because every protocol script is simulatable
    // without the secret key. Run two different tasks against the same
    // key pair and check both evaluate correctly.
    use dragoon_core::workload::draw_answer;
    use dragoon_crypto::elgamal::KeyPair;
    use dragoon_protocol::{ContentStore, Requester, Verdict};

    let mut rng = StdRng::seed_from_u64(0x5e55);
    let keypair = KeyPair::generate(&mut rng);
    let mut store = ContentStore::new();

    let w1 = imagenet_workload(4_000, &mut rng);
    let w2 = generate_workload(30, 4, 2, 3, PlaintextRange::new(0, 3), 2_000, &mut rng);
    let r1 = Requester::with_keypair(
        dragoon_ledger::Address::from_byte(1),
        keypair,
        &w1,
        &mut store,
        &mut rng,
    );
    let r2 = Requester::with_keypair(
        dragoon_ledger::Address::from_byte(1),
        keypair,
        &w2,
        &mut store,
        &mut rng,
    );
    // Same encryption key, different gold-standard commitments.
    assert_eq!(r1.public_key(), r2.public_key());
    let (dragoon_contract::HitMessage::Publish(p1), dragoon_contract::HitMessage::Publish(p2)) =
        (r1.publish_msg(), r2.publish_msg())
    else {
        panic!()
    };
    assert_ne!(p1.comm_gs, p2.comm_gs);

    // Both tasks evaluate correctly under the shared key.
    for (r, w) in [(&r1, &w1), (&r2, &w2)] {
        let good = draw_answer(
            &AnswerModel::Diligent { accuracy: 1.0 },
            &w.truth,
            &w.spec.range,
            &mut rng,
        );
        let cts = good.encrypt(&r.public_key(), &mut rng);
        assert!(matches!(
            r.evaluate(dragoon_ledger::Address::from_byte(9), &cts, &mut rng),
            Verdict::Accept { .. }
        ));
        let bad = draw_answer(
            &AnswerModel::Diligent { accuracy: 0.0 },
            &w.truth,
            &w.spec.range,
            &mut rng,
        );
        let cts = bad.encrypt(&r.public_key(), &mut rng);
        assert!(matches!(
            r.evaluate(dragoon_ledger::Address::from_byte(9), &cts, &mut rng),
            Verdict::RejectLowQuality { .. }
        ));
    }
}
