//! Journal-equivalence differential tests.
//!
//! The chain's revert atomicity moved from whole-state clone
//! checkpointing to the journaled state layer (undo logs in ledger,
//! contract and registry). These tests pin the refactor's contract:
//! **journaled execution is bit-identical to the clone baseline** —
//! receipts, events, balances, verdicts and full contract state — across
//! random transaction sequences, mid-block gas-cap rollback,
//! front-runner contention and whole-market runs.

use dragoon_chain::{Chain, FifoPolicy, FrontRunPolicy, GasSchedule, ReorderPolicy, TxStatus};
use dragoon_contract::{
    HitMessage, HitRegistry, PhaseWindows, RegistryMessage, SettlementMode, REGISTRY_CODE_LEN,
};
use dragoon_core::task::GoldenStandards;
use dragoon_crypto::commitment::{Commitment, CommitmentKey};
use dragoon_crypto::elgamal::{KeyPair, PlaintextRange};
use dragoon_ledger::Address;
use dragoon_sim::{run_market, MarketConfig, MarketPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BUDGET: u128 = 3_000;

/// Fixture shared by both chains of a differential pair.
struct Fixture {
    kp: KeyPair,
    requester: Address,
    golden: GoldenStandards,
    gs_key: CommitmentKey,
}

impl Fixture {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            kp: KeyPair::generate(&mut rng),
            requester: Address::from_byte(0xd0),
            golden: GoldenStandards {
                indexes: vec![0, 2, 4],
                answers: vec![1, 0, 1],
            },
            gs_key: CommitmentKey::random(&mut rng),
        }
    }

    fn params(&self) -> dragoon_contract::PublishParams {
        dragoon_contract::PublishParams {
            n: 6,
            budget: BUDGET,
            k: 3,
            range: PlaintextRange::binary(),
            theta: 3,
            ek: self.kp.ek,
            comm_gs: Commitment::commit(&self.golden.encode(), &self.gs_key),
            task_digest: [9u8; 32],
        }
    }

    fn create_msg(&self) -> RegistryMessage {
        RegistryMessage::Create {
            windows: PhaseWindows {
                commit_timeout: Some(4),
                reveal: 2,
                evaluate: 3,
            },
            params: self.params(),
        }
    }

    /// A funded chain pair: identical except for the revert-atomicity
    /// strategy (journal vs. whole-state clone checkpointing).
    fn chain_pair(
        &self,
        mode: SettlementMode,
        gas_limit: Option<u64>,
    ) -> (Chain<HitRegistry>, Chain<HitRegistry>) {
        let build = |clone_baseline: bool| {
            let mut chain = Chain::deploy(
                HitRegistry::new(mode),
                REGISTRY_CODE_LEN,
                GasSchedule::istanbul(),
            );
            if let Some(limit) = gas_limit {
                chain = chain.with_block_gas_limit(limit);
            }
            if clone_baseline {
                chain = chain.with_clone_checkpointing();
            }
            chain.ledger.mint(self.requester, BUDGET * 20);
            for w in 1..=6u8 {
                chain.ledger.mint(Address::from_byte(w), 100);
            }
            chain
        };
        (build(false), build(true))
    }
}

/// Asserts every observable of the two chains is identical.
fn assert_chains_equal(journal: &Chain<HitRegistry>, baseline: &Chain<HitRegistry>, tag: &str) {
    assert_eq!(
        journal.blocks(),
        baseline.blocks(),
        "{tag}: receipts diverged"
    );
    assert_eq!(journal.events(), baseline.events(), "{tag}: chain events");
    assert_eq!(journal.ledger, baseline.ledger, "{tag}: ledger state");
    assert_eq!(
        journal.contract(),
        baseline.contract(),
        "{tag}: registry state"
    );
    assert_eq!(
        journal.mempool_len(),
        baseline.mempool_len(),
        "{tag}: carried mempool"
    );
}

/// Submits the same message to both chains.
fn submit_both(
    pair: &mut (Chain<HitRegistry>, Chain<HitRegistry>),
    sender: Address,
    msg: RegistryMessage,
) {
    pair.0.submit(sender, msg.clone());
    pair.1.submit(sender, msg);
}

/// Random transaction soup: a deliberately messy mix of valid creates,
/// commits, premature finalizes/cancels, unknown-instance routes and
/// duplicate commitments — most of which revert — replayed against both
/// strategies round by round.
#[test]
fn random_tx_sequences_journal_equals_clone() {
    for seed in [1u64, 7, 0xfeed] {
        let fx = Fixture::new(seed);
        let mut pair = fx.chain_pair(SettlementMode::PerProof, None);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        for round in 0..12 {
            let txs = rng.gen_range(1..6u32);
            for _ in 0..txs {
                let created = pair.0.contract().len() as u64;
                match rng.gen_range(0..7u32) {
                    0 => submit_both(&mut pair, fx.requester, fx.create_msg()),
                    // Unfunded create: reverts at the ledger freeze.
                    1 => submit_both(&mut pair, Address::from_byte(0x99), fx.create_msg()),
                    2 if created > 0 => {
                        // A commit; may duplicate a previous commitment
                        // (copy-and-paste defence) or hit a full task.
                        let id = rng.gen_range(0..created);
                        let w = Address::from_byte(rng.gen_range(1..7u32) as u8);
                        let tag = if rng.gen_range(0..3u32) == 0 {
                            0 // deliberately reused payload → duplicate
                        } else {
                            rng.gen_range(0..1000u32)
                        };
                        let key = CommitmentKey([7u8; 32]);
                        let comm = Commitment::commit(&tag.to_le_bytes(), &key);
                        submit_both(
                            &mut pair,
                            w,
                            RegistryMessage::Hit {
                                id,
                                msg: HitMessage::Commit { commitment: comm },
                            },
                        );
                    }
                    3 if created > 0 => {
                        // Premature finalize: wrong phase or too early.
                        let id = rng.gen_range(0..created);
                        submit_both(
                            &mut pair,
                            fx.requester,
                            RegistryMessage::Hit {
                                id,
                                msg: HitMessage::Finalize,
                            },
                        );
                    }
                    4 if created > 0 => {
                        let id = rng.gen_range(0..created);
                        submit_both(
                            &mut pair,
                            fx.requester,
                            RegistryMessage::Hit {
                                id,
                                msg: HitMessage::Cancel,
                            },
                        );
                    }
                    5 => {
                        // Route to an instance that does not exist.
                        submit_both(
                            &mut pair,
                            fx.requester,
                            RegistryMessage::Hit {
                                id: 999,
                                msg: HitMessage::Finalize,
                            },
                        );
                    }
                    _ => {
                        // Golden opening in the wrong phase: reverts.
                        let id = rng.gen_range(0..created.max(1));
                        submit_both(
                            &mut pair,
                            fx.requester,
                            RegistryMessage::Hit {
                                id,
                                msg: HitMessage::Golden {
                                    golden: fx.golden.clone(),
                                    key: fx.gs_key,
                                },
                            },
                        );
                    }
                }
            }
            pair.0.advance_round_fifo();
            pair.1.advance_round_fifo();
            assert_chains_equal(&pair.0, &pair.1, &format!("seed {seed} round {round}"));
        }
        // The soup must actually have exercised the revert path.
        let reverted = pair
            .0
            .receipts()
            .filter(|r| matches!(r.status, TxStatus::Reverted(_)))
            .count();
        assert!(reverted > 5, "seed {seed}: only {reverted} reverts");
    }
}

/// Mid-block gas-cap rollback: Create transactions cost ~1.3M gas, so a
/// 2M-gas block fits exactly one — every round a *successful* speculative
/// execution must be rolled back out of the overfull block and carried.
#[test]
fn gas_cap_overflow_rollback_journal_equals_clone() {
    let fx = Fixture::new(42);
    let mut pair = fx.chain_pair(SettlementMode::PerProof, Some(2_000_000));
    for _ in 0..5 {
        submit_both(&mut pair, fx.requester, fx.create_msg());
    }
    for round in 0..6 {
        pair.0.advance_round_fifo();
        pair.1.advance_round_fifo();
        assert_chains_equal(&pair.0, &pair.1, &format!("overflow round {round}"));
    }
    assert_eq!(pair.0.contract().len(), 5, "all creates eventually landed");
    // Each of the first five blocks carried exactly one create.
    for block in &pair.0.blocks()[..5] {
        assert_eq!(block.receipts.len(), 1, "block {}", block.round);
    }
}

/// The same mid-block overflow discipline under the **parallel**
/// executor: a journaled chain running 4 executor threads against the
/// serial clone-checkpoint baseline. Oversized creates land alone
/// through the serial-barrier path; the commit batch that follows spans
/// two instances and is cut by the 100k cap mid-batch, so the executor
/// must discard its optimistic results and reproduce the serial
/// carry-over exactly.
#[test]
fn gas_cap_overflow_rollback_parallel_journal_equals_clone() {
    let fx = Fixture::new(43);
    let (journal, baseline) = fx.chain_pair(SettlementMode::PerProof, Some(100_000));
    let mut pair = (journal.with_exec_threads(4), baseline);
    submit_both(&mut pair, fx.requester, fx.create_msg());
    submit_both(&mut pair, fx.requester, fx.create_msg());
    for round in 0..2 {
        pair.0.advance_round_parallel(&mut FifoPolicy);
        pair.1.advance_round_fifo();
        assert_chains_equal(&pair.0, &pair.1, &format!("parallel create round {round}"));
    }
    assert_eq!(pair.0.contract().len(), 2);
    // Six commits alternating between the two instances: ~46k gas each,
    // so a 100k block fits two and the parallel batch is cut mid-way.
    for w in 1..=6u8 {
        let key = CommitmentKey([w; 32]);
        let comm = Commitment::commit(&[w], &key);
        submit_both(
            &mut pair,
            Address::from_byte(w),
            RegistryMessage::Hit {
                id: (w % 2) as u64,
                msg: HitMessage::Commit { commitment: comm },
            },
        );
    }
    for round in 0..4 {
        pair.0.advance_round_parallel(&mut FifoPolicy);
        pair.1.advance_round_fifo();
        assert_chains_equal(
            &pair.0,
            &pair.1,
            &format!("parallel overflow round {round}"),
        );
    }
    assert_eq!(pair.0.mempool_len(), 0, "every commit eventually landed");
    assert!(
        pair.0.parallel_stats().gas_fallbacks >= 1,
        "the cut batch must have fallen back: {:?}",
        pair.0.parallel_stats()
    );
}

/// Front-runner contention under a gas cap: the designated front-runner
/// jumps the queue every round while overbooked commits race for slots,
/// producing both reverts (TaskFull, duplicates) and carried spill-over.
#[test]
fn front_runner_contention_journal_equals_clone() {
    let fx = Fixture::new(0xf407);
    let mut pair = fx.chain_pair(SettlementMode::Batched, Some(4_000_000));
    let front = Address::from_byte(1);
    let mut policy_a = FrontRunPolicy::new(front);
    let mut policy_b = FrontRunPolicy::new(front);
    submit_both(&mut pair, fx.requester, fx.create_msg());
    submit_both(&mut pair, fx.requester, fx.create_msg());
    let mut rng = StdRng::seed_from_u64(0xf407);
    for round in 0..10 {
        // Everybody (including the front-runner) races commits at both
        // instances; k = 3, so later commits revert with TaskFull.
        for w in 1..=5u8 {
            let id = rng.gen_range(0..2u64);
            let key = CommitmentKey([w; 32]);
            let comm = Commitment::commit(&[w, round as u8], &key);
            submit_both(
                &mut pair,
                Address::from_byte(w),
                RegistryMessage::Hit {
                    id,
                    msg: HitMessage::Commit { commitment: comm },
                },
            );
        }
        pair.0
            .advance_round(&mut policy_a as &mut dyn ReorderPolicy<RegistryMessage>);
        pair.1
            .advance_round(&mut policy_b as &mut dyn ReorderPolicy<RegistryMessage>);
        assert_chains_equal(&pair.0, &pair.1, &format!("front-run round {round}"));
    }
    let reverted = pair
        .0
        .receipts()
        .filter(|r| matches!(r.status, TxStatus::Reverted(_)))
        .count();
    assert!(reverted > 0, "contention must produce reverts");
}

/// Regression: a failing transaction leaves the registry, the ledger and
/// the event logs exactly untouched under the journal.
#[test]
fn failing_tx_leaves_state_untouched() {
    let fx = Fixture::new(3);
    let (mut chain, _) = fx.chain_pair(SettlementMode::PerProof, None);
    chain.submit(fx.requester, fx.create_msg());
    chain.advance_round_fifo();

    let registry_before = chain.contract().clone();
    let ledger_before = chain.ledger.clone();
    let chain_events_before = chain.events().len();

    // Three reverting transactions: unfunded create, unknown instance,
    // wrong-phase golden opening.
    chain.submit(Address::from_byte(0x99), fx.create_msg());
    chain.submit(
        fx.requester,
        RegistryMessage::Hit {
            id: 42,
            msg: HitMessage::Finalize,
        },
    );
    chain.submit(
        fx.requester,
        RegistryMessage::Hit {
            id: 0,
            msg: HitMessage::Golden {
                golden: fx.golden.clone(),
                key: fx.gs_key,
            },
        },
    );
    chain.advance_round_fifo();

    let reverted = chain
        .receipts()
        .filter(|r| matches!(r.status, TxStatus::Reverted(_)))
        .count();
    assert_eq!(reverted, 3, "all three must revert");
    assert_eq!(
        chain.contract(),
        &registry_before,
        "registry state must be untouched"
    );
    assert_eq!(chain.ledger, ledger_before, "ledger must be untouched");
    assert_eq!(
        chain.events().len(),
        chain_events_before,
        "no contract events may leak from reverted transactions"
    );
}

/// Whole-market differential: the same seeded marketplace scenario —
/// batched settlement, gas-capped blocks, worker noise, PoQoEA
/// rejections, cancellations — must produce byte-identical reports under
/// the journal and under clone checkpointing.
#[test]
fn market_run_journal_equals_clone() {
    let base = MarketConfig {
        hits: 30,
        spawn_per_block: 6,
        workers: 25,
        worker_capacity: 4,
        seed: 0x10a1,
        ..MarketConfig::default()
    };
    let journal = run_market(base.clone());
    let baseline = run_market(MarketConfig {
        clone_checkpointing: true,
        ..base
    });
    assert_eq!(
        journal.to_json(),
        baseline.to_json(),
        "whole-market reports must be identical"
    );
    assert_eq!(journal.hits_published, 30);
    assert!(journal.workers_rejected > 0 || journal.hits_cancelled > 0);
}

/// The same differential under an adversarial front-running scheduler.
#[test]
fn market_run_front_run_journal_equals_clone() {
    let base = MarketConfig {
        hits: 15,
        workers: 20,
        overbook: 2,
        policy: MarketPolicy::FrontRun,
        seed: 0xab,
        ..MarketConfig::default()
    };
    let journal = run_market(base.clone());
    let baseline = run_market(MarketConfig {
        clone_checkpointing: true,
        ..base
    });
    assert_eq!(journal.to_json(), baseline.to_json());
    assert!(journal.reverted_txs > 0, "overbooking must cause reverts");
}
