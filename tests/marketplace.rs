//! Marketplace-engine integration tests: a few hundred concurrent HITs
//! over one gas-capped chain, batched-vs-per-proof settlement
//! equivalence, and bit-exact reproducibility from a seed.

use dragoon_contract::SettlementMode;
use dragoon_core::workload::AnswerModel;
use dragoon_protocol::WorkerBehavior;
use dragoon_sim::{run_market, MarketConfig, MarketPolicy};

/// A market sized to the acceptance criterion: ≥200 HITs racing through
/// one chain under a block gas cap.
fn big_config() -> MarketConfig {
    MarketConfig {
        hits: 220,
        spawn_per_block: 12,
        workers: 80,
        worker_capacity: 5,
        seed: 0xa11ce,
        max_blocks: 900,
        ..MarketConfig::default()
    }
}

#[test]
fn two_hundred_concurrent_hits_settle_under_gas_cap() {
    let report = run_market(big_config());
    assert_eq!(report.hits_published, 220);
    assert_eq!(
        report.hits_unfinished, 0,
        "every HIT must settle or cancel within the horizon"
    );
    assert!(
        report.hits_settled >= 180,
        "most HITs must fill and settle (settled {})",
        report.hits_settled
    );
    // The cap was respected by every block.
    let limit = report.block_gas_limit.unwrap();
    for b in &report.block_stats {
        assert!(
            b.gas_used <= limit,
            "block {} used {} > limit {}",
            b.height,
            b.gas_used,
            limit
        );
    }
    // Batched mode actually batched.
    assert!(report.batch.batches > 0);
    assert!(report.batch.items > 0);
    // Settlement latency is bounded by the phase windows plus queueing.
    assert!(report.latency_mean_blocks > 0.0);
    assert!(report.latency_max_blocks < 80);
    // Money flowed.
    assert!(report.workers_paid > 300, "paid {}", report.workers_paid);
    assert!(report.rewards_paid > 0);
    // JSON renders and carries the headline numbers.
    let json = report.to_json();
    assert!(json.contains("\"hits_published\":220"));
    assert!(json.contains("\"settlement\":\"batched\""));
}

/// The acceptance-criterion equivalence: same seed, same scenario, one
/// run verifying per proof and one through the batched path — every
/// HIT must settle its workers identically.
#[test]
fn batched_settlement_verdicts_equal_per_proof() {
    // Capacity is deliberately generous: verdict *timing* differs by one
    // block between modes, and scarce capacity would let that shift
    // which workers join later HITs.
    let base = MarketConfig {
        hits: 40,
        spawn_per_block: 6,
        workers: 60,
        worker_capacity: 40,
        behavior_mix: vec![
            (
                WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.9 }),
                3,
            ),
            (
                WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.1 }),
                2,
            ),
            (WorkerBehavior::Honest(AnswerModel::OutOfRange), 1),
            (WorkerBehavior::CommitNoReveal, 1),
        ],
        seed: 0xe0_0001,
        ..MarketConfig::default()
    };
    let report_a = run_market(MarketConfig {
        settlement: SettlementMode::PerProof,
        ..base.clone()
    });
    let report_b = run_market(MarketConfig {
        settlement: SettlementMode::Batched,
        ..base
    });

    assert_eq!(report_a.hits_published, report_b.hits_published);
    assert_eq!(report_a.hits_settled, report_b.hits_settled);
    assert_eq!(report_a.hits_cancelled, report_b.hits_cancelled);
    assert_eq!(report_a.workers_paid, report_b.workers_paid);
    assert_eq!(report_a.workers_rejected, report_b.workers_rejected);
    assert_eq!(report_a.rewards_paid, report_b.rewards_paid);
    assert_eq!(report_a.refunds, report_b.refunds);
    assert_eq!(report_a.answers_collected, report_b.answers_collected);
    assert!(report_a.answers_collected > 0);
    // Per-HIT outcomes (paid/rejected/no-reveal counts) must match 1:1.
    assert_eq!(report_a.outcomes.len(), report_b.outcomes.len());
    for (a, b) in report_a.outcomes.iter().zip(&report_b.outcomes) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.paid, b.paid, "hit {}", a.id);
        assert_eq!(a.rejected, b.rejected, "hit {}", a.id);
        assert_eq!(a.no_reveal, b.no_reveal, "hit {}", a.id);
        assert_eq!(a.cancelled, b.cancelled, "hit {}", a.id);
    }
    // Something was actually rejected in this mix, and only the batched
    // run dispatched batches.
    assert!(report_a.workers_rejected > 0);
    assert_eq!(report_a.batch.batches, 0);
    assert!(report_b.batch.batches > 0);
}

/// The CI-speed scale smoke: 1 000 HITs through one registry — the
/// journaled state layer keeps this tractable (the old whole-state clone
/// per transaction was quadratic in live instances). Lightweight tasks
/// (4 questions, 2 golds) keep the crypto cost down; the point is the
/// engine and state layer, not the proofs.
#[test]
fn one_thousand_hit_smoke() {
    let report = run_market(MarketConfig {
        hits: 1_000,
        spawn_per_block: 25,
        workers: 400,
        worker_capacity: 8,
        questions: 4,
        golds: 2,
        k: 3,
        theta: 2,
        seed: 0x1000,
        // 25 Creates/block alone cost ~32M gas; a mainnet-sized 30M cap
        // would congest the mempool until reveals miss their phase
        // windows, so the scale smoke runs with roomier blocks.
        block_gas_limit: Some(100_000_000),
        max_blocks: 1_200,
        ..MarketConfig::default()
    });
    assert_eq!(report.hits_published, 1_000);
    assert_eq!(
        report.hits_unfinished, 0,
        "every HIT must settle or cancel within the horizon"
    );
    assert!(
        report.hits_settled >= 900,
        "most HITs must fill and settle (settled {})",
        report.hits_settled
    );
    assert!(report.workers_paid > 1_000, "paid {}", report.workers_paid);
    let limit = report.block_gas_limit.unwrap();
    assert!(report.gas_per_block_max <= limit);
}

#[test]
fn same_seed_reproduces_identical_reports() {
    let cfg = MarketConfig {
        hits: 25,
        workers: 30,
        seed: 0x5eed,
        ..MarketConfig::default()
    };
    let a = run_market(cfg.clone());
    let b = run_market(cfg.clone());
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.blocks, b.blocks);
    // A different seed produces a genuinely different trajectory.
    let c = run_market(MarketConfig {
        seed: 0x5eed + 1,
        ..cfg
    });
    assert_ne!(a.to_json(), c.to_json());
}

#[test]
fn front_runner_policy_keeps_market_live() {
    let report = run_market(MarketConfig {
        hits: 20,
        workers: 25,
        policy: MarketPolicy::FrontRun,
        overbook: 2,
        seed: 0xf407,
        ..MarketConfig::default()
    });
    assert_eq!(report.hits_unfinished, 0);
    assert!(report.hits_settled > 0);
    // Overbooked slots mean some commits lost the race and reverted.
    assert!(report.reverted_txs > 0);
}

#[test]
fn scarce_workers_drop_unfillable_tasks() {
    // 30 tasks needing 3 workers each, but a pool of 6 with capacity 1:
    // most tasks cannot fill within the commit window and must cancel
    // with a full refund — never hang.
    let report = run_market(MarketConfig {
        hits: 30,
        spawn_per_block: 10,
        workers: 6,
        worker_capacity: 1,
        seed: 0xd20b,
        ..MarketConfig::default()
    });
    assert_eq!(report.hits_unfinished, 0);
    assert!(report.hits_cancelled > 0, "scarcity must cancel some tasks");
    // Cancelled budgets came back in full: refunds cover at least the
    // cancelled tasks' budgets.
    assert!(report.refunds >= report.hits_cancelled as u128 * 3_000);
}

#[test]
fn zero_accuracy_workers_get_rejected_with_poqoea() {
    let report = run_market(MarketConfig {
        hits: 30,
        workers: 40,
        worker_capacity: 30,
        behavior_mix: vec![
            (
                WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 1.0 }),
                2,
            ),
            (
                WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.0 }),
                1,
            ),
        ],
        seed: 0xbadc0de,
        ..MarketConfig::default()
    });
    assert_eq!(report.hits_unfinished, 0);
    assert!(
        report.workers_rejected > 0,
        "zero-accuracy workers must be rejected with PoQoEA"
    );
    let rejected_total: usize = report.outcomes.iter().map(|o| o.rejected).sum();
    assert_eq!(rejected_total, report.workers_rejected);
}
