//! The multi-node convergence differential: `dragoon-net`'s headline
//! guarantee.
//!
//! A market run with the network layer on drives N replicas through a
//! deterministic gossip layer with seeded delays, loss, duplicate
//! delivery, scheduled partitions and adversarial relays. After the
//! final drain, **every honest node must hold bit-identical state to
//! the single-node canonical chain of the same seed**: registry,
//! ledger (balances + event log), block receipts and contract events —
//! even when mid-run partitions or withheld blocks forced replicas onto
//! fork branches that had to be reorged away. The whole stack is also
//! pinned thread-independent: the market report JSON *and* the network
//! report JSON are byte-identical at 1 and 4 executor threads.

use dragoon_chain::Chain;
use dragoon_contract::HitRegistry;
use dragoon_net::{NetConfig, NetSim, PartitionWindow, ProposerPolicy, RelaySpec};
use dragoon_sim::{MarketConfig, MarketReport, MarketSim};
use proptest::prelude::*;

/// Executor thread counts the differential is pinned across.
const THREADS: [usize; 2] = [1, 4];

fn market(seed: u64, threads: usize, net: NetConfig) -> MarketConfig {
    MarketConfig {
        hits: 10,
        spawn_per_block: 4,
        workers: 18,
        exec_threads: threads,
        seed,
        net: Some(net),
        ..MarketConfig::default()
    }
}

fn run(cfg: MarketConfig) -> (MarketReport, Chain<HitRegistry>, NetSim<HitRegistry>) {
    let (report, chain, net) = MarketSim::new(cfg).run_keeping_net();
    (report, chain, net.expect("net configured"))
}

/// The differential itself: every node's head is the canonical tip and
/// its full replica state equals the canonical chain's.
fn assert_converged(chain: &Chain<HitRegistry>, net: &NetSim<HitRegistry>) {
    let (tip, height) = net.canonical_head();
    assert_eq!(height, chain.round(), "canonical feed covered every round");
    for i in 0..net.nodes() {
        let (head, head_height) = net.node_head(i);
        assert_eq!(head, tip, "node {i} settled on the canonical head");
        assert_eq!(head_height, height, "node {i} height");
        let replica = net.node_chain(i);
        assert_eq!(replica.round(), chain.round(), "node {i} round");
        assert!(
            replica.contract() == chain.contract(),
            "node {i} registry state diverged"
        );
        assert!(replica.ledger == chain.ledger, "node {i} ledger diverged");
        assert!(
            replica.blocks() == chain.blocks(),
            "node {i} block receipts diverged"
        );
        assert!(
            replica.events() == chain.events(),
            "node {i} contract events diverged"
        );
        assert_eq!(
            replica.ledger.total_supply(),
            chain.ledger.total_supply(),
            "node {i} escrow conservation"
        );
    }
}

/// Instant links: replicas track the canonical chain round by round —
/// no staleness, so no forks and no reorgs, and exact convergence.
#[test]
fn zero_delay_replicas_track_every_round() {
    let net_cfg = NetConfig {
        delay: (0, 0),
        ..NetConfig::default()
    };
    let (report, chain, net) = run(market(0x6e31, 0, net_cfg));
    assert_converged(&chain, &net);
    let nr = report.net.expect("net report");
    assert!(nr.converged);
    assert_eq!(nr.forks_produced, 0, "nothing went stale on instant links");
    assert_eq!(nr.reorgs, 0);
}

/// Lossy, delaying, duplicating links: anti-entropy still delivers
/// everything eventually, and the outcome is thread-independent.
#[test]
fn lossy_duplicating_network_converges() {
    let net_cfg = NetConfig {
        delay: (1, 4),
        drop_per_mille: 120,
        duplicate_per_mille: 80,
        ..NetConfig::default()
    };
    let mut witness: Option<(String, String)> = None;
    for threads in THREADS {
        let (report, chain, net) = run(market(0x6e32, threads, net_cfg.clone()));
        assert_converged(&chain, &net);
        let nr = report.net.as_ref().expect("net report");
        assert!(nr.converged);
        assert!(nr.messages_dropped > 0, "loss actually happened");
        assert!(nr.duplicates_delivered > 0, "duplicates actually happened");
        let jsons = (report.to_json(), report.net_json());
        match &witness {
            None => witness = Some(jsons),
            Some(expected) => assert_eq!(
                *expected, jsons,
                "market + net JSON identical across thread counts"
            ),
        }
    }
}

/// A mid-run partition isolates two nodes; their patience runs out,
/// they produce fork blocks on the island, and the heal forces a real
/// reorg back onto the canonical branch — after which state is still
/// bit-identical, at both thread counts.
#[test]
fn partition_forces_forks_and_reorgs() {
    let net_cfg = NetConfig {
        delay: (1, 2),
        fork_patience: 3,
        partitions: vec![PartitionWindow {
            start: 6,
            end: 26,
            island: vec![2, 3],
        }],
        ..NetConfig::default()
    };
    let mut witness: Option<(String, String)> = None;
    for threads in THREADS {
        let (report, chain, net) = run(market(0x6e33, threads, net_cfg.clone()));
        assert_converged(&chain, &net);
        let nr = report.net.as_ref().expect("net report");
        assert!(nr.converged);
        assert!(nr.forks_produced > 0, "the island forked");
        assert!(nr.reorgs > 0, "the heal forced reorgs");
        assert!(nr.max_reorg_depth >= 1);
        let jsons = (report.to_json(), report.net_json());
        match &witness {
            None => witness = Some(jsons),
            Some(expected) => assert_eq!(
                *expected, jsons,
                "market + net JSON identical across thread counts"
            ),
        }
    }
}

/// The targeting MEV adversary: block delivery to one victim is held
/// back long enough that it forks — yet it still ends bit-identical.
#[test]
fn delay_targets_adversary_still_converges() {
    let net_cfg = NetConfig {
        delay: (1, 2),
        fork_patience: 3,
        relay: RelaySpec::DelayTargets {
            victims: vec![1],
            extra: 10,
        },
        ..NetConfig::default()
    };
    let (report, chain, net) = run(market(0x6e34, 0, net_cfg));
    assert_converged(&chain, &net);
    let nr = report.net.expect("net report");
    assert!(nr.converged);
    assert!(nr.forks_produced > 0, "the starved victim forked");
    assert!(nr.reorgs > 0, "late blocks forced the victim to reorg");
}

/// The withhold-and-release MEV adversary: the sequencer's blocks reach
/// the replicas only in periodic bursts; between bursts every replica
/// is blind, forks, and each burst reorgs them back. Still exact.
#[test]
fn withhold_release_adversary_forces_reorgs() {
    let net_cfg = NetConfig {
        delay: (1, 2),
        fork_patience: 3,
        relay: RelaySpec::WithholdRelease { period: 8 },
        ..NetConfig::default()
    };
    let (report, chain, net) = run(market(0x6e35, 0, net_cfg));
    assert_converged(&chain, &net);
    let nr = report.net.expect("net report");
    assert!(nr.converged);
    assert!(nr.forks_produced > 0, "starved replicas forked");
    assert!(nr.reorgs > 0, "each burst forced reorgs");
}

/// The seeded-lottery proposer is exactly reproducible: two runs of the
/// same seed emit byte-identical network reports.
#[test]
fn lottery_proposer_is_seed_reproducible() {
    let net_cfg = NetConfig {
        delay: (1, 3),
        drop_per_mille: 60,
        fork_patience: 3,
        proposer: ProposerPolicy::Lottery,
        partitions: vec![PartitionWindow {
            start: 5,
            end: 20,
            island: vec![3],
        }],
        ..NetConfig::default()
    };
    let (report_a, chain_a, net_a) = run(market(0x6e36, 0, net_cfg.clone()));
    let (report_b, chain_b, net_b) = run(market(0x6e36, 0, net_cfg));
    assert_converged(&chain_a, &net_a);
    assert_converged(&chain_b, &net_b);
    assert_eq!(report_a.net_json(), report_b.net_json());
    assert_eq!(report_a.to_json(), report_b.to_json());
}

/// Strategy for random topology soups: node count in {2, 4, 7}, random
/// delay spread, loss and duplication rates, and one random partition
/// window isolating the highest-indexed node.
fn net_soup() -> impl Strategy<Value = NetConfig> {
    (0usize..3, 0u64..3, 0u32..180, 0u32..120, 4u64..16, 2u64..6).prop_map(
        |(sel, delay_min, drop, dup, part_start, patience)| {
            let nodes = [2usize, 4, 7][sel];
            NetConfig {
                nodes,
                delay: (delay_min, delay_min + 2),
                drop_per_mille: drop,
                duplicate_per_mille: dup,
                partitions: vec![PartitionWindow {
                    start: part_start,
                    end: part_start + 12,
                    island: vec![nodes - 1],
                }],
                fork_patience: patience,
                ..NetConfig::default()
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random topology soups: whatever the link faults, partition
    /// schedule and patience, every node converges to the canonical
    /// state and escrow is conserved — at both thread counts.
    #[test]
    fn random_topology_soups_converge(net_cfg in net_soup(), seed in 0u64..1_000) {
        let mut witness: Option<(String, String)> = None;
        for threads in THREADS {
            let cfg = MarketConfig {
                hits: 5,
                spawn_per_block: 3,
                workers: 12,
                exec_threads: threads,
                seed: 0x6e37_0000 + seed,
                net: Some(net_cfg.clone()),
                ..MarketConfig::default()
            };
            let (report, chain, net) = run(cfg);
            assert_converged(&chain, &net);
            prop_assert!(report.net.as_ref().expect("net report").converged);
            let jsons = (report.to_json(), report.net_json());
            match &witness {
                None => witness = Some(jsons),
                Some(expected) => prop_assert_eq!(expected, &jsons),
            }
        }
    }
}
