//! Parallel-execution equivalence: the differential suite for the
//! optimistic parallel block executor.
//!
//! The executor's contract is absolute: committed state — receipts,
//! contract events, ledger balances and event log, registry state,
//! mempool carry-over, whole-market report JSON — is **bit-identical to
//! serial execution for every thread count**. These tests pin that
//! property across:
//!
//! * random transaction soups (proptest-driven) at 1, 2 and 8 threads,
//!   including Create-dominated soups (speculative id reservation),
//! * full multi-instance lifecycles where disjoint instances genuinely
//!   execute in parallel (stats prove optimistic batches committed),
//! * adversarial same-instance contention (everything must fall back to
//!   serial re-execution in mempool order),
//! * cross-instance ledger conflicts (instances paying the same worker
//!   in one block — the journal touch records must catch them and
//!   resolve them by selective retry, not whole-batch discard),
//! * reverted speculative creations (id-assignment repair in place),
//! * mid-batch block-gas overflow (group-closed prefix commit or serial
//!   fallback — carry-over must match serial), and
//! * whole-market runs under FIFO and front-running schedulers.

use dragoon_chain::{Chain, FifoPolicy, GasSchedule, TxStatus};
use dragoon_contract::{
    HitMessage, HitRegistry, PhaseWindows, RegistryMessage, SettlementMode, REGISTRY_CODE_LEN,
};
use dragoon_core::poqoea::{self, QualityProof};
use dragoon_core::task::{Answer, GoldenStandards};
use dragoon_crypto::commitment::{Commitment, CommitmentKey};
use dragoon_crypto::elgamal::{KeyPair, PlaintextRange};
use dragoon_ledger::Address;
use dragoon_sim::{run_market, MarketConfig, MarketPolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BUDGET: u128 = 3_000;
/// Thread counts every differential runs at; index 0 is the serial
/// baseline the others are compared against.
const THREADS: [usize; 3] = [1, 2, 8];

struct Fixture {
    kp: KeyPair,
    requester: Address,
    golden: GoldenStandards,
    gs_key: CommitmentKey,
}

impl Fixture {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            kp: KeyPair::generate(&mut rng),
            requester: Address::from_byte(0xd0),
            golden: GoldenStandards {
                indexes: vec![0, 2, 4],
                answers: vec![1, 0, 1],
            },
            gs_key: CommitmentKey::random(&mut rng),
        }
    }

    fn params(&self) -> dragoon_contract::PublishParams {
        dragoon_contract::PublishParams {
            n: 6,
            budget: BUDGET,
            k: 3,
            range: PlaintextRange::binary(),
            theta: 3,
            ek: self.kp.ek,
            comm_gs: Commitment::commit(&self.golden.encode(), &self.gs_key),
            task_digest: [9u8; 32],
        }
    }

    fn create_msg(&self) -> RegistryMessage {
        RegistryMessage::Create {
            windows: PhaseWindows {
                commit_timeout: Some(4),
                reveal: 2,
                evaluate: 3,
            },
            params: self.params(),
        }
    }

    /// One funded chain per thread count, identical except for the
    /// executor's thread budget.
    fn chain_set(&self, mode: SettlementMode, gas_limit: Option<u64>) -> Vec<Chain<HitRegistry>> {
        THREADS
            .iter()
            .map(|&threads| {
                let mut chain = Chain::deploy(
                    HitRegistry::new(mode).with_verify_threads(threads),
                    REGISTRY_CODE_LEN,
                    GasSchedule::istanbul(),
                )
                .with_exec_threads(threads);
                if let Some(limit) = gas_limit {
                    chain = chain.with_block_gas_limit(limit);
                }
                chain.ledger.mint(self.requester, BUDGET * 20);
                for w in 1..=40u8 {
                    chain.ledger.mint(Address::from_byte(w), 100);
                }
                chain
            })
            .collect()
    }
}

/// Submits the same message to every chain of the set.
fn submit_all(chains: &mut [Chain<HitRegistry>], sender: Address, msg: RegistryMessage) {
    for chain in chains.iter_mut() {
        chain.submit(sender, msg.clone());
    }
}

/// Advances every chain one FIFO round through the parallel entry point
/// (which is the serial path at one thread).
fn advance_all(chains: &mut [Chain<HitRegistry>]) {
    for chain in chains.iter_mut() {
        chain.advance_round_parallel(&mut FifoPolicy);
    }
}

/// Asserts every observable of each chain matches the serial baseline.
fn assert_all_equal(chains: &[Chain<HitRegistry>], tag: &str) {
    let serial = &chains[0];
    for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
        assert_eq!(
            serial.blocks(),
            chain.blocks(),
            "{tag}: receipts diverged at {threads} threads"
        );
        assert_eq!(
            serial.events(),
            chain.events(),
            "{tag}: chain events diverged at {threads} threads"
        );
        assert_eq!(
            serial.ledger, chain.ledger,
            "{tag}: ledger diverged at {threads} threads"
        );
        assert_eq!(
            serial.contract(),
            chain.contract(),
            "{tag}: registry state diverged at {threads} threads"
        );
        assert_eq!(
            serial.mempool_len(),
            chain.mempool_len(),
            "{tag}: carried mempool diverged at {threads} threads"
        );
    }
}

/// Drives `count` instances with per-instance worker pools through
/// commit and reveal, in interleaved blocks so every block carries
/// transactions for many disjoint instances. Returns each instance's
/// workers and their encrypted answers.
#[allow(clippy::type_complexity)]
fn drive_to_evaluate(
    fx: &Fixture,
    chains: &mut [Chain<HitRegistry>],
    rng: &mut StdRng,
    count: u64,
    shared_workers: &[(u8, Address)],
) -> Vec<(Vec<Address>, Vec<dragoon_core::task::EncryptedAnswer>)> {
    for _ in 0..count {
        submit_all(chains, fx.requester, fx.create_msg());
    }
    advance_all(chains);
    let good = Answer(vec![1, 0, 0, 0, 1, 0]);
    let bad = Answer(vec![0, 0, 1, 0, 0, 0]);
    let mut per_hit = Vec::new();
    // Commits: interleaved across instances within the same block.
    let mut commits: Vec<(Address, RegistryMessage)> = Vec::new();
    let mut keys = Vec::new();
    for id in 0..count {
        // Disjoint worker pools by default; each `(slot, worker)` of
        // `shared_workers` pins that slot of *every* instance to the same
        // worker to force cross-group ledger contention at settlement.
        let workers: Vec<Address> = (1..=3u8)
            .map(|j| {
                shared_workers
                    .iter()
                    .find(|(slot, _)| *slot == j)
                    .map(|(_, w)| *w)
                    .unwrap_or_else(|| Address::from_byte(10 + (id as u8) * 3 + j))
            })
            .collect();
        let answers = [bad.clone(), good.clone(), good.clone()];
        let mut cts = Vec::new();
        let mut hit_keys = Vec::new();
        for (w, a) in workers.iter().zip(&answers) {
            let enc = a.encrypt(&fx.kp.ek, rng);
            let key = CommitmentKey::random(rng);
            let comm = Commitment::commit(&enc.encode(), &key);
            commits.push((
                *w,
                RegistryMessage::Hit {
                    id,
                    msg: HitMessage::Commit { commitment: comm },
                },
            ));
            cts.push(enc);
            hit_keys.push(key);
        }
        per_hit.push((workers, cts));
        keys.push(hit_keys);
    }
    for (sender, msg) in commits {
        submit_all(chains, sender, msg);
    }
    advance_all(chains);
    assert_all_equal(chains, "commit block");
    // Reveals, likewise interleaved.
    for (id, ((workers, cts), hit_keys)) in per_hit.iter().zip(&keys).enumerate() {
        for ((w, enc), key) in workers.iter().zip(cts).zip(hit_keys) {
            submit_all(
                chains,
                *w,
                RegistryMessage::Hit {
                    id: id as u64,
                    msg: HitMessage::Reveal {
                        ciphertexts: enc.clone(),
                        key: *key,
                    },
                },
            );
        }
    }
    advance_all(chains);
    assert_all_equal(chains, "reveal block");
    // Close the reveal window.
    advance_all(chains);
    advance_all(chains);
    // Open gold standards on every instance in one block.
    for id in 0..count {
        submit_all(
            chains,
            fx.requester,
            RegistryMessage::Hit {
                id,
                msg: HitMessage::Golden {
                    golden: fx.golden.clone(),
                    key: fx.gs_key,
                },
            },
        );
    }
    advance_all(chains);
    assert_all_equal(chains, "golden block");
    per_hit
}

/// Full multi-instance lifecycle: four disjoint instances running
/// commit → reveal → golden → PoQoEA rejection → deadline settlement,
/// with every phase's transactions interleaved across instances in the
/// same blocks. The serial baseline and the 2- and 8-thread executors
/// must agree bit-for-bit, and the multi-threaded chains must actually
/// have committed optimistic batches (this workload has no conflicts).
#[test]
fn multi_instance_lifecycle_parallel_equals_serial() {
    let fx = Fixture::new(0x9a7a);
    let mut rng = StdRng::seed_from_u64(0x9a7a ^ 1);
    let mut chains = fx.chain_set(SettlementMode::PerProof, None);
    let per_hit = drive_to_evaluate(&fx, &mut chains, &mut rng, 4, &[]);
    // Reject each instance's low-quality worker 0 — all four PoQoEA
    // verifications land in the same block, one per instance, executing
    // concurrently on the multi-threaded chains.
    for (id, (workers, cts)) in per_hit.iter().enumerate() {
        let (chi, proof) = poqoea::prove_quality(
            &fx.kp.dk,
            &cts[0],
            &fx.golden,
            &PlaintextRange::binary(),
            &mut rng,
        );
        assert!(chi < 3);
        submit_all(
            &mut chains,
            fx.requester,
            RegistryMessage::Hit {
                id: id as u64,
                msg: HitMessage::Evaluate {
                    worker: workers[0],
                    chi,
                    proof,
                },
            },
        );
    }
    advance_all(&mut chains);
    assert_all_equal(&chains, "evaluate block");
    for round in 0..6 {
        advance_all(&mut chains);
        assert_all_equal(&chains, &format!("settlement round {round}"));
    }
    for id in 0..4 {
        assert!(chains[0].contract().hit(id).unwrap().is_settled());
    }
    for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
        let stats = chain.parallel_stats();
        assert!(
            stats.batches > 0 && stats.parallel_txs > 0,
            "{threads} threads: no optimistic batch ever committed ({stats:?})"
        );
        assert_eq!(
            stats.conflict_fallbacks, 0,
            "{threads} threads: disjoint instances must not conflict"
        );
    }
}

/// Inline payments across disjoint instances in one block: a bogus
/// PoQoEA (χ=0, empty proof) backfires and pays the worker immediately,
/// so each group's shadow ledger carries real balance writes and `Paid`
/// events that must merge back in schedule order.
#[test]
fn parallel_inline_payments_merge_exactly() {
    let fx = Fixture::new(0x6e4d);
    let mut rng = StdRng::seed_from_u64(0x6e4d ^ 1);
    let mut chains = fx.chain_set(SettlementMode::PerProof, None);
    let per_hit = drive_to_evaluate(&fx, &mut chains, &mut rng, 3, &[]);
    for (id, (workers, _)) in per_hit.iter().enumerate() {
        submit_all(
            &mut chains,
            fx.requester,
            RegistryMessage::Hit {
                id: id as u64,
                msg: HitMessage::Evaluate {
                    worker: workers[1],
                    chi: 0,
                    proof: QualityProof::default(),
                },
            },
        );
    }
    advance_all(&mut chains);
    assert_all_equal(&chains, "backfired evaluate block");
    // The backfired rejections paid each instance's worker 1 inline.
    for (workers, _) in &per_hit {
        assert_eq!(chains[0].ledger.balance(&workers[1]), 100 + BUDGET / 3);
    }
    for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
        let stats = chain.parallel_stats();
        assert!(stats.batches > 0, "{threads} threads: {stats:?}");
        assert_eq!(stats.conflict_fallbacks, 0, "{threads} threads: {stats:?}");
    }
}

/// Conflict injection, cross-instance flavor: every instance enrolls the
/// *same* worker, and one block carries a backfired evaluation (an
/// inline payment to that worker) for each instance. The declared access
/// sets name the shared worker only as a *read* (the payment is
/// outcome-dependent), so the grouper leaves the instances parallel and
/// the observed write-write overlap on the worker's balance entry must
/// be resolved by a **selective retry** — the conflicting groups merge
/// and re-execute in mempool order — never by discarding the whole batch
/// to serial.
#[test]
fn shared_worker_payments_selective_retry() {
    let fx = Fixture::new(0xc04f);
    let mut rng = StdRng::seed_from_u64(0xc04f ^ 1);
    let shared = Address::from_byte(40);
    let mut chains = fx.chain_set(SettlementMode::PerProof, None);
    let per_hit = drive_to_evaluate(&fx, &mut chains, &mut rng, 3, &[(1, shared)]);
    for (id, (workers, _)) in per_hit.iter().enumerate() {
        assert_eq!(workers[0], shared);
        submit_all(
            &mut chains,
            fx.requester,
            RegistryMessage::Hit {
                id: id as u64,
                msg: HitMessage::Evaluate {
                    worker: shared,
                    chi: 0,
                    proof: QualityProof::default(),
                },
            },
        );
    }
    advance_all(&mut chains);
    assert_all_equal(&chains, "conflicting payment block");
    // All three instances paid the same worker BUDGET/3 each.
    assert_eq!(chains[0].ledger.balance(&shared), 100 + 3 * (BUDGET / 3));
    for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
        let stats = chain.parallel_stats();
        assert!(
            stats.selective_retries >= 1,
            "{threads} threads: overlapping touch records must retry ({stats:?})"
        );
        assert_eq!(
            stats.conflict_fallbacks, 0,
            "{threads} threads: a declared-preset conflict must not discard the batch ({stats:?})"
        );
        assert!(
            stats.batches > 0,
            "{threads} threads: the retried batch must still commit optimistically ({stats:?})"
        );
    }
    // The retry's re-execution preserves mempool order.
    let evaluate_seqs: Vec<u64> = chains[2]
        .receipts()
        .filter(|r| r.label == "evaluate")
        .map(|r| r.seq)
        .collect();
    let mut sorted = evaluate_seqs.clone();
    sorted.sort_unstable();
    assert_eq!(evaluate_seqs, sorted, "retry must keep mempool order");
}

/// Repeated cross-group ledger conflicts: two workers are shared across
/// every instance, and two consecutive blocks each carry one backfired
/// evaluation per instance targeting the block's shared worker. Every
/// block must take the selective-retry path (the conflict repeats), the
/// full-serial backstop must never fire, and state must stay
/// bit-identical throughout.
#[test]
fn repeated_cross_group_conflicts_stay_selective() {
    let fx = Fixture::new(0x2e7a);
    let mut rng = StdRng::seed_from_u64(0x2e7a ^ 1);
    let shared_a = Address::from_byte(40);
    let shared_b = Address::from_byte(39);
    let mut chains = fx.chain_set(SettlementMode::PerProof, None);
    let per_hit = drive_to_evaluate(
        &fx,
        &mut chains,
        &mut rng,
        3,
        &[(1, shared_a), (2, shared_b)],
    );
    for (round, shared) in [shared_a, shared_b].into_iter().enumerate() {
        for (id, (workers, _)) in per_hit.iter().enumerate() {
            assert!(workers.contains(&shared));
            submit_all(
                &mut chains,
                fx.requester,
                RegistryMessage::Hit {
                    id: id as u64,
                    msg: HitMessage::Evaluate {
                        worker: shared,
                        chi: 0,
                        proof: QualityProof::default(),
                    },
                },
            );
        }
        advance_all(&mut chains);
        assert_all_equal(&chains, &format!("conflict round {round}"));
    }
    // Both shared workers were paid by all three instances.
    for shared in [shared_a, shared_b] {
        assert_eq!(chains[0].ledger.balance(&shared), 100 + 3 * (BUDGET / 3));
    }
    for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
        let stats = chain.parallel_stats();
        assert!(
            stats.selective_retries >= 2,
            "{threads} threads: each conflicting block must retry ({stats:?})"
        );
        assert_eq!(
            stats.conflict_fallbacks, 0,
            "{threads} threads: the serial backstop must stay cold ({stats:?})"
        );
    }
}

/// Conflict injection, hot-instance flavor: every worker hammers the one
/// HIT in the block, with duplicate commitments and overbooked slots.
/// A single-instance batch is inherently sequential — all transactions
/// must go through serial execution in mempool order, no optimistic
/// batch may commit, and no journal state may leak across threads
/// (state equality plus the journal's own stale-undo debug assertions
/// police the latter).
#[test]
fn hot_instance_contention_all_serial_in_mempool_order() {
    let fx = Fixture::new(0x407);
    let mut chains = fx.chain_set(SettlementMode::PerProof, None);
    submit_all(&mut chains, fx.requester, fx.create_msg());
    advance_all(&mut chains);
    // Ten workers race for k = 3 slots; worker 7 copies worker 1's
    // commitment (DuplicateCommitment), everyone past the quota reverts
    // with TaskFull.
    for w in 1..=10u8 {
        let tag = if w == 7 { 1 } else { w };
        let key = CommitmentKey([7u8; 32]);
        let comm = Commitment::commit(&[tag], &key);
        submit_all(
            &mut chains,
            Address::from_byte(w),
            RegistryMessage::Hit {
                id: 0,
                msg: HitMessage::Commit { commitment: comm },
            },
        );
    }
    advance_all(&mut chains);
    assert_all_equal(&chains, "hot instance block");
    let reverted = chains[0]
        .receipts()
        .filter(|r| matches!(r.status, TxStatus::Reverted(_)))
        .count();
    assert!(
        reverted >= 7,
        "contention must produce reverts ({reverted})"
    );
    for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
        let stats = chain.parallel_stats();
        assert_eq!(
            stats.batches, 0,
            "{threads} threads: a single hot instance must not batch ({stats:?})"
        );
        assert_eq!(stats.parallel_txs, 0, "{threads} threads: {stats:?}");
        assert!(stats.serial_txs >= 11, "{threads} threads: {stats:?}");
        // Serial re-execution order is mempool order: seq strictly
        // ascending under FIFO.
        let seqs: Vec<u64> = chain.receipts().map(|r| r.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(
            seqs, sorted,
            "{threads} threads: order must be mempool order"
        );
    }
}

/// Gas-cap block overflow under the parallel executor, straddling
/// flavor: the six commits *alternate* instances, so both groups hold
/// transactions on each side of the gas cut and no group-closed prefix
/// can commit. The executor must detect the cut against the
/// schedule-ordered receipts, discard the optimistic results and fall
/// back to serial execution so the carry-over (and every later block)
/// matches the serial chain exactly.
#[test]
fn gas_cap_overflow_rollback_parallel_equals_serial() {
    let fx = Fixture::new(0x9a5);
    // ~46k gas per commit: a 100k block fits two.
    let mut chains = fx.chain_set(SettlementMode::PerProof, Some(100_000));
    submit_all(&mut chains, fx.requester, fx.create_msg());
    submit_all(&mut chains, fx.requester, fx.create_msg());
    // Creates cost ~1.3M each — let them land in unlimited-size blocks
    // first? No: the cap applies from round one, so each block carries
    // one oversized create alone (also exercised under parallelism).
    advance_all(&mut chains);
    advance_all(&mut chains);
    assert_all_equal(&chains, "create blocks under cap");
    assert_eq!(chains[0].contract().len(), 2);
    // Six commits, alternating instances: the parallel batch spans both
    // groups, but only two commits fit per block.
    for w in 1..=6u8 {
        let key = CommitmentKey([w; 32]);
        let comm = Commitment::commit(&[w], &key);
        submit_all(
            &mut chains,
            Address::from_byte(w),
            RegistryMessage::Hit {
                id: (w % 2) as u64,
                msg: HitMessage::Commit { commitment: comm },
            },
        );
    }
    for round in 0..4 {
        advance_all(&mut chains);
        assert_all_equal(&chains, &format!("overflow round {round}"));
    }
    assert_eq!(chains[0].mempool_len(), 0, "all commits eventually landed");
    for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
        let stats = chain.parallel_stats();
        assert!(
            stats.gas_fallbacks >= 1,
            "{threads} threads: the straddled cut batch must fall back ({stats:?})"
        );
    }
}

/// Gas-cap block overflow, group-aligned flavor: two commits per
/// instance, instance-contiguous in the mempool, so the gas cut falls
/// exactly on a group boundary. The executor must commit the first
/// group's optimistic results as the block prefix and re-execute only
/// the cut suffix serially — bit-identical to the serial chain's
/// carry-over, with the full-batch gas fallback staying cold.
#[test]
fn gas_cut_commits_group_closed_prefix() {
    let fx = Fixture::new(0x9a6);
    // ~46k gas per commit: a 100k block fits two — exactly instance 0's
    // group.
    let mut chains = fx.chain_set(SettlementMode::PerProof, Some(100_000));
    submit_all(&mut chains, fx.requester, fx.create_msg());
    submit_all(&mut chains, fx.requester, fx.create_msg());
    advance_all(&mut chains);
    advance_all(&mut chains);
    assert_all_equal(&chains, "create blocks under cap");
    assert_eq!(chains[0].contract().len(), 2);
    // Four commits, instance-contiguous: the batch spans two groups of
    // two commits each, and the block fits the first group exactly.
    for w in 1..=4u8 {
        let key = CommitmentKey([w; 32]);
        let comm = Commitment::commit(&[w], &key);
        submit_all(
            &mut chains,
            Address::from_byte(w),
            RegistryMessage::Hit {
                id: ((w - 1) / 2) as u64,
                msg: HitMessage::Commit { commitment: comm },
            },
        );
    }
    for round in 0..3 {
        advance_all(&mut chains);
        assert_all_equal(&chains, &format!("prefix-cut round {round}"));
    }
    assert_eq!(chains[0].mempool_len(), 0, "all commits eventually landed");
    for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
        let stats = chain.parallel_stats();
        assert!(
            stats.gas_prefix_commits >= 1,
            "{threads} threads: the fitting group must commit as the \
             block prefix ({stats:?})"
        );
        assert_eq!(
            stats.gas_fallbacks, 0,
            "{threads} threads: a group-aligned cut must not discard \
             the batch ({stats:?})"
        );
    }
}

/// Speculative creation: a block whose mempool is entirely `Create`
/// transactions from distinct requesters no longer serializes — each
/// creation reserves its id deterministically, forms its own group and
/// executes in parallel, with zero barriers and bit-identical state
/// (ids, derived addresses, escrow balances, `Created` event order).
#[test]
fn create_dominated_block_parallelizes() {
    let fx = Fixture::new(0xcafe);
    let mut chains = fx.chain_set(SettlementMode::PerProof, None);
    let creators: Vec<Address> = (0..8u8).map(|i| Address::from_byte(0xa0 + i)).collect();
    for chain in chains.iter_mut() {
        for c in &creators {
            chain.ledger.mint(*c, BUDGET * 4);
        }
    }
    // Block 1: eight concurrent creations, nothing else.
    for c in &creators {
        submit_all(&mut chains, *c, fx.create_msg());
    }
    advance_all(&mut chains);
    assert_all_equal(&chains, "create-only block");
    assert_eq!(chains[0].contract().len(), 8);
    // Block 2: creations interleaved with commits to the fresh ids —
    // spawn-heavy traffic with live instances in the same batch.
    for (i, c) in creators.iter().enumerate() {
        submit_all(&mut chains, *c, fx.create_msg());
        let key = CommitmentKey([i as u8 + 1; 32]);
        let comm = Commitment::commit(&[i as u8 + 1], &key);
        submit_all(
            &mut chains,
            Address::from_byte(i as u8 + 1),
            RegistryMessage::Hit {
                id: i as u64,
                msg: HitMessage::Commit { commitment: comm },
            },
        );
    }
    advance_all(&mut chains);
    assert_all_equal(&chains, "mixed create/commit block");
    assert_eq!(chains[0].contract().len(), 16);
    for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
        let stats = chain.parallel_stats();
        assert!(
            stats.batches >= 2 && stats.parallel_txs >= 24,
            "{threads} threads: creations must execute optimistically ({stats:?})"
        );
        assert_eq!(
            stats.barriers, 0,
            "{threads} threads: a creation must not be a barrier ({stats:?})"
        );
        assert_eq!(
            stats.conflict_fallbacks, 0,
            "{threads} threads: disjoint creations must not conflict ({stats:?})"
        );
    }
}

/// Same-sender spawns: six `Create` transactions from **one** funded
/// requester in one block. The escrow debit is declared as a
/// commutative delta-mergeable write on the sender's balance, so the
/// spawns form separate groups (instead of one serial group via a
/// shared declared write), their deltas sum at merge, and the overdraft
/// check proves the sum fits — the access-set residue (c) shaved.
#[test]
fn same_sender_creates_parallelize_with_delta_debits() {
    let fx = Fixture::new(0x5a5a);
    let mut chains = fx.chain_set(SettlementMode::PerProof, None);
    // chain_set funds the requester with BUDGET * 20; six creations
    // freeze 6 × BUDGET, comfortably inside the balance.
    for _ in 0..6 {
        submit_all(&mut chains, fx.requester, fx.create_msg());
    }
    advance_all(&mut chains);
    assert_all_equal(&chains, "same-sender create block");
    assert_eq!(chains[0].contract().len(), 6);
    for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
        let stats = chain.parallel_stats();
        assert!(
            stats.batches >= 1 && stats.groups > 1,
            "{threads} threads: same-sender spawns must split into \
             multiple groups ({stats:?})"
        );
        assert_eq!(
            stats.selective_retries, 0,
            "{threads} threads: a funded sender must pass the overdraft \
             check outright ({stats:?})"
        );
        assert_eq!(stats.conflict_fallbacks, 0, "{threads} threads: {stats:?}");
        assert_eq!(stats.barriers, 0, "{threads} threads: {stats:?}");
    }
}

/// Same-sender spawns that *overdraw*: the sender holds funds for three
/// of six creations. Each creation passes its guard optimistically
/// (every group's shadow sees the full base balance), the overdraft
/// check catches the sum, merges the debiting groups for a mempool-order
/// retry — where the late creations genuinely revert, which then takes
/// the creation-repair path (re-reserved ids, merged mempool-order
/// re-execution) rather than the full-serial backstop. State must end
/// bit-identical to serial: ids 0–2 created, three reverts.
#[test]
fn same_sender_create_overdraft_is_caught_and_matches_serial() {
    let fx = Fixture::new(0x0d5a);
    let mut chains = fx.chain_set(SettlementMode::PerProof, None);
    let spender = Address::from_byte(0x77);
    for chain in chains.iter_mut() {
        chain.ledger.mint(spender, BUDGET * 3);
    }
    for _ in 0..6 {
        submit_all(&mut chains, spender, fx.create_msg());
    }
    advance_all(&mut chains);
    assert_all_equal(&chains, "overdraft create block");
    assert_eq!(chains[0].contract().len(), 3, "exactly the funded three");
    assert_eq!(chains[0].ledger.balance(&spender), 0);
    let reverted = chains[0]
        .receipts()
        .filter(|r| matches!(r.status, TxStatus::Reverted(_)))
        .count();
    assert_eq!(reverted, 3);
    for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
        let stats = chain.parallel_stats();
        assert!(
            stats.selective_retries >= 1,
            "{threads} threads: the overdraft must be caught by the \
             debit sum check and retried ({stats:?})"
        );
        assert!(
            stats.create_retries >= 1,
            "{threads} threads: the retry's reverted creations must \
             repair the id assignment in place ({stats:?})"
        );
        assert_eq!(
            stats.conflict_fallbacks, 0,
            "{threads} threads: the repair must converge without the \
             serial backstop ({stats:?})"
        );
    }
}

/// A speculative creation that *reverts* (unfunded requester) shifts
/// the serial id assignment of everything after it. The executor must
/// repair in place — re-reserve ids along the serial assignment and
/// selectively re-execute only the reservation-holding groups — never
/// discard the batch to the full-serial backstop, and end bit-identical
/// to serial, including the ids later successful creations receive.
#[test]
fn reverted_create_repairs_in_place() {
    let fx = Fixture::new(0xdead);
    let mut chains = fx.chain_set(SettlementMode::PerProof, None);
    let funded = Address::from_byte(0xa1);
    for chain in chains.iter_mut() {
        chain.ledger.mint(funded, BUDGET * 4);
    }
    // Funded, broke, funded: the middle creation reverts, shifting the
    // serial id assignment of the third one.
    submit_all(&mut chains, fx.requester, fx.create_msg());
    submit_all(&mut chains, Address::from_byte(0x99), fx.create_msg());
    submit_all(&mut chains, funded, fx.create_msg());
    advance_all(&mut chains);
    assert_all_equal(&chains, "reverted-create block");
    assert_eq!(chains[0].contract().len(), 2, "two creations landed");
    let reverted = chains[0]
        .receipts()
        .filter(|r| matches!(r.status, TxStatus::Reverted(_)))
        .count();
    assert_eq!(reverted, 1);
    for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
        let stats = chain.parallel_stats();
        assert!(
            stats.create_retries >= 1,
            "{threads} threads: a reverted creation must repair the id \
             assignment in place ({stats:?})"
        );
        assert_eq!(
            stats.conflict_fallbacks, 0,
            "{threads} threads: a reverted creation must no longer \
             discard the batch ({stats:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random transaction soups: valid creates, racing commits,
    /// premature finalizes/cancels, unknown-instance routes, wrong-phase
    /// goldens — most reverting, many instance-addressed (so the
    /// multi-threaded chains build real optimistic batches). Proptest
    /// drives the shape; every round must leave all three chains
    /// bit-identical.
    #[test]
    fn random_soups_parallel_equals_serial(
        ops in proptest::collection::vec((0u32..7, 0u64..8, 1u32..200), 12..40),
    ) {
        let fx = Fixture::new(0x50a1);
        let mut chains = fx.chain_set(SettlementMode::PerProof, None);
        for (round, window) in ops.chunks(5).enumerate() {
            for &(kind, id_sel, tag) in window {
                let created = chains[0].contract().len() as u64;
                match kind {
                    0 => submit_all(&mut chains, fx.requester, fx.create_msg()),
                    1 => submit_all(&mut chains, Address::from_byte(0x99), fx.create_msg()),
                    2 | 3 if created > 0 => {
                        let id = id_sel % created;
                        let w = Address::from_byte((tag % 12 + 1) as u8);
                        // Every third tag reuses a payload — the
                        // copy-and-paste duplicate-commitment defence.
                        let tag = if tag % 3 == 0 { 0 } else { tag };
                        let key = CommitmentKey([7u8; 32]);
                        let comm = Commitment::commit(&tag.to_le_bytes(), &key);
                        submit_all(&mut chains, w, RegistryMessage::Hit {
                            id,
                            msg: HitMessage::Commit { commitment: comm },
                        });
                    }
                    4 if created > 0 => {
                        let id = id_sel % created;
                        submit_all(&mut chains, fx.requester, RegistryMessage::Hit {
                            id,
                            msg: HitMessage::Finalize,
                        });
                    }
                    5 => {
                        submit_all(&mut chains, fx.requester, RegistryMessage::Hit {
                            id: 999,
                            msg: HitMessage::Finalize,
                        });
                    }
                    _ => {
                        let id = id_sel % created.max(1);
                        submit_all(&mut chains, fx.requester, RegistryMessage::Hit {
                            id,
                            msg: HitMessage::Golden {
                                golden: fx.golden.clone(),
                                key: fx.gs_key,
                            },
                        });
                    }
                }
            }
            advance_all(&mut chains);
            assert_all_equal(&chains, &format!("soup round {round}"));
        }
    }

    /// Create-dominated soups: roughly half of every round's mempool is
    /// a funded `Create` from a rotating pool of requesters, the rest
    /// commits and finalizes against the ids created so far. The
    /// workload PR 3 serialized completely (every `Create` was a
    /// barrier) must now form optimistic batches with zero barriers and
    /// stay bit-identical across thread counts.
    #[test]
    fn create_dominated_soups_parallel_equals_serial(
        ops in proptest::collection::vec((0u32..8, 0u64..8, 1u32..200), 12..32),
    ) {
        let fx = Fixture::new(0x5ba1);
        let mut chains = fx.chain_set(SettlementMode::PerProof, None);
        let creators: Vec<Address> = (0..6u8).map(|i| Address::from_byte(0xa0 + i)).collect();
        for chain in chains.iter_mut() {
            for c in &creators {
                chain.ledger.mint(*c, BUDGET * 40);
            }
        }
        for (round, window) in ops.chunks(4).enumerate() {
            for &(kind, id_sel, tag) in window {
                let created = chains[0].contract().len() as u64;
                match kind {
                    // Half the operation space spawns new instances.
                    0..=3 => {
                        let creator = creators[(tag as usize) % creators.len()];
                        submit_all(&mut chains, creator, fx.create_msg());
                    }
                    4 | 5 if created > 0 => {
                        let id = id_sel % created;
                        let w = Address::from_byte((tag % 12 + 1) as u8);
                        let key = CommitmentKey([3u8; 32]);
                        let comm = Commitment::commit(&tag.to_le_bytes(), &key);
                        submit_all(&mut chains, w, RegistryMessage::Hit {
                            id,
                            msg: HitMessage::Commit { commitment: comm },
                        });
                    }
                    6 if created > 0 => {
                        let id = id_sel % created;
                        submit_all(&mut chains, fx.requester, RegistryMessage::Hit {
                            id,
                            msg: HitMessage::Finalize,
                        });
                    }
                    _ => {
                        let creator = creators[(id_sel as usize) % creators.len()];
                        submit_all(&mut chains, creator, fx.create_msg());
                    }
                }
            }
            advance_all(&mut chains);
            assert_all_equal(&chains, &format!("create soup round {round}"));
        }
        assert!(chains[0].contract().len() >= 6, "soup must actually spawn");
        for (chain, threads) in chains.iter().zip(THREADS).skip(1) {
            let stats = chain.parallel_stats();
            assert!(
                stats.batches > 0,
                "{threads} threads: creations must batch ({stats:?})"
            );
            assert_eq!(
                stats.barriers, 0,
                "{threads} threads: no message of this soup is a barrier ({stats:?})"
            );
        }
    }
}

/// Whole-market differential: the same seeded marketplace — batched
/// settlement, gas caps, worker noise, rejections, cancellations — must
/// produce byte-identical report JSON at 1, 2 and 8 executor threads.
#[test]
fn market_report_identical_across_thread_counts() {
    let base = MarketConfig {
        hits: 24,
        spawn_per_block: 6,
        workers: 25,
        worker_capacity: 4,
        seed: 0x10a2,
        exec_threads: 1,
        ..MarketConfig::default()
    };
    let serial = run_market(base.clone());
    assert_eq!(serial.hits_published, 24);
    for threads in [2, 8] {
        let parallel = run_market(MarketConfig {
            exec_threads: threads,
            ..base.clone()
        });
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "market reports must be identical at {threads} threads"
        );
    }
}

/// The same market differential with inline (per-proof) settlement —
/// the mode where verification cost sits inside the transactions the
/// executor parallelizes — under a front-running scheduler.
#[test]
fn market_report_per_proof_front_run_identical() {
    let base = MarketConfig {
        hits: 15,
        workers: 20,
        overbook: 2,
        settlement: SettlementMode::PerProof,
        policy: MarketPolicy::FrontRun,
        seed: 0xab2,
        exec_threads: 1,
        ..MarketConfig::default()
    };
    let serial = run_market(base.clone());
    let parallel = run_market(MarketConfig {
        exec_threads: 8,
        ..base
    });
    assert_eq!(serial.to_json(), parallel.to_json());
    assert!(serial.reverted_txs > 0, "overbooking must cause reverts");
}

/// The pipelined block lifecycle is a pure performance change: the same
/// seeded market with persistence fully pipelined (background writer,
/// incremental snapshots, log compaction, overlapped settlement
/// verification) must produce byte-identical report JSON to the
/// synchronous full-snapshot store — and to no persistence at all — at
/// serial and parallel widths.
#[test]
fn market_report_identical_with_pipelined_persistence() {
    let scratch = |tag: &str| {
        std::env::temp_dir().join(format!("dragoon-pipeeq-{}-{tag}", std::process::id()))
    };
    let base = MarketConfig {
        hits: 24,
        spawn_per_block: 6,
        workers: 25,
        worker_capacity: 4,
        seed: 0x10a2,
        exec_threads: 1,
        ..MarketConfig::default()
    };
    let in_memory = run_market(base.clone());
    for threads in [1usize, 4] {
        let sync_dir = scratch(&format!("sync{threads}"));
        let pipe_dir = scratch(&format!("pipe{threads}"));
        let sync = run_market(MarketConfig {
            exec_threads: threads,
            persist: Some(dragoon_sim::PersistConfig {
                snapshot_every: 4,
                ..dragoon_sim::PersistConfig::new(sync_dir.clone())
            }),
            ..base.clone()
        });
        let piped = run_market(MarketConfig {
            exec_threads: threads,
            persist: Some(dragoon_sim::PersistConfig {
                snapshot_every: 4,
                ..dragoon_sim::PersistConfig::pipelined(pipe_dir.clone())
            }),
            ..base.clone()
        });
        assert_eq!(
            sync.to_json(),
            piped.to_json(),
            "pipelining must not change the report at {threads} threads"
        );
        assert_eq!(
            in_memory.to_json(),
            piped.to_json(),
            "persistence must not change the report at {threads} threads"
        );
        let stats = piped
            .persist
            .expect("pipelined run must report store stats");
        assert!(
            stats.delta_snapshots > 0 && stats.compactions > 0,
            "the pipelined store must actually exercise the pipeline: {stats:?}"
        );
        let _ = std::fs::remove_dir_all(&sync_dir);
        let _ = std::fs::remove_dir_all(&pipe_dir);
    }
}
