//! Property-based tests (proptest) on the core invariants:
//! PoQoEA completeness and upper-bound soundness over random tasks,
//! ElGamal/commitment round trips, quality-function algebra, and ledger
//! conservation.

use dragoon_core::poqoea;
use dragoon_core::quality::{mismatches, quality};
use dragoon_core::task::{Answer, GoldenStandards};
use dragoon_crypto::commitment::{Commitment, CommitmentKey};
use dragoon_crypto::elgamal::{Decrypted, KeyPair, PlaintextRange};
use dragoon_crypto::{vpke, Fr};
use dragoon_ledger::{Address, Ledger};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random task shape (n, golds) with a random answer and
/// gold standards.
fn task_strategy() -> impl Strategy<Value = (Vec<u64>, Vec<usize>, Vec<u64>, u64)> {
    // n in 4..20, golds a subset, binary answers, range hi = 1..3.
    (4usize..20, 1u64..4).prop_flat_map(|(n, hi)| {
        let answers = proptest::collection::vec(0u64..=hi, n);
        let golds = proptest::sample::subsequence((0..n).collect::<Vec<_>>(), 1..n.min(8));
        let gold_answers = proptest::collection::vec(0u64..=hi, 8);
        (answers, golds, gold_answers, Just(hi))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn quality_bounded_by_golds((answer, golds, gold_ans, _hi) in task_strategy()) {
        let gs = GoldenStandards {
            answers: gold_ans[..golds.len()].to_vec(),
            indexes: golds,
        };
        let a = Answer(answer);
        let q = quality(&a, &gs);
        prop_assert!(q <= gs.len() as u64);
        prop_assert_eq!(q + mismatches(&a, &gs), gs.len() as u64);
    }

    #[test]
    fn poqoea_complete_on_random_tasks((answer, golds, gold_ans, hi) in task_strategy()) {
        let mut rng = StdRng::seed_from_u64(0xfeed);
        let kp = KeyPair::generate(&mut rng);
        let range = PlaintextRange::new(0, hi);
        let gs = GoldenStandards {
            answers: gold_ans[..golds.len()].to_vec(),
            indexes: golds,
        };
        let a = Answer(answer);
        let cts = a.encrypt(&kp.ek, &mut rng);
        let (chi, proof) = poqoea::prove_quality(&kp.dk, &cts, &gs, &range, &mut rng);
        prop_assert_eq!(chi, quality(&a, &gs));
        prop_assert!(poqoea::verify_quality(&kp.ek, &cts, chi, &proof, &gs).is_ok());
    }

    #[test]
    fn poqoea_upper_bound_soundness((answer, golds, gold_ans, hi) in task_strategy()) {
        // Claiming any χ' < true quality must fail (the requester cannot
        // underpay), while χ' ≥ quality verifies.
        let mut rng = StdRng::seed_from_u64(0xfade);
        let kp = KeyPair::generate(&mut rng);
        let range = PlaintextRange::new(0, hi);
        let gs = GoldenStandards {
            answers: gold_ans[..golds.len()].to_vec(),
            indexes: golds,
        };
        let a = Answer(answer);
        let q = quality(&a, &gs);
        let cts = a.encrypt(&kp.ek, &mut rng);
        let (_, proof) = poqoea::prove_quality(&kp.dk, &cts, &gs, &range, &mut rng);
        if q > 0 {
            prop_assert!(
                poqoea::verify_quality(&kp.ek, &cts, q - 1, &proof, &gs).is_err(),
                "understating quality must be rejected"
            );
        }
        prop_assert!(poqoea::verify_quality(&kp.ek, &cts, q, &proof, &gs).is_ok());
    }

    #[test]
    fn elgamal_round_trip(m in 0u64..64, key_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(key_seed);
        let kp = KeyPair::generate(&mut rng);
        let range = PlaintextRange::new(0, 63);
        let ct = kp.ek.encrypt(m, &mut rng);
        prop_assert_eq!(kp.dk.decrypt(&ct, &range), Decrypted::InRange(m));
    }

    #[test]
    fn vpke_complete_for_all_plaintexts(m in 0u64..8, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&mut rng);
        let range = PlaintextRange::new(0, 7);
        let ct = kp.ek.encrypt(m, &mut rng);
        let (claim, proof) = vpke::prove(&kp.dk, &ct, &range, &mut rng);
        let stmt = vpke::DecryptionStatement { ek: kp.ek, ct, claim };
        prop_assert!(vpke::verify(&stmt, &proof));
        prop_assert_eq!(claim, vpke::PlaintextClaim::InRange(m));
    }

    #[test]
    fn vpke_rejects_shifted_claims(m in 0u64..8, shift in 1u64..8, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&mut rng);
        let range = PlaintextRange::new(0, 15);
        let ct = kp.ek.encrypt(m, &mut rng);
        let (_, proof) = vpke::prove(&kp.dk, &ct, &range, &mut rng);
        let stmt = vpke::DecryptionStatement {
            ek: kp.ek,
            ct,
            claim: vpke::PlaintextClaim::InRange(m + shift),
        };
        prop_assert!(!vpke::verify(&stmt, &proof));
    }

    #[test]
    fn commitment_binding_and_hiding(msg1 in any::<Vec<u8>>(), msg2 in any::<Vec<u8>>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = CommitmentKey::random(&mut rng);
        let comm = Commitment::commit(&msg1, &key);
        prop_assert!(comm.open(&msg1, &key));
        if msg1 != msg2 {
            prop_assert!(!comm.open(&msg2, &key));
        }
        let key2 = CommitmentKey::random(&mut rng);
        if key != key2 {
            prop_assert!(!comm.open(&msg1, &key2));
        }
    }

    #[test]
    fn field_algebra(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (fa, fb, fc) = (Fr::from_u64(a), Fr::from_u64(b), Fr::from_u64(c));
        prop_assert_eq!(fa * (fb + fc), fa * fb + fa * fc);
        prop_assert_eq!((fa + fb) + fc, fa + (fb + fc));
        prop_assert_eq!(fa - fa, Fr::zero());
        if !fa.is_zero() {
            prop_assert_eq!(fa * fa.inverse().unwrap(), Fr::one());
        }
    }

    #[test]
    fn ledger_conserves_supply(ops in proptest::collection::vec((0u8..3, 0u8..4, 0u8..4, 0u128..1000), 1..30)) {
        let mut ledger = Ledger::new();
        for i in 0..4u8 {
            ledger.mint(Address::from_byte(i), 10_000);
        }
        let supply = ledger.total_supply();
        for (op, from, to, amount) in ops {
            let from = Address::from_byte(from);
            let to = Address::from_byte(to);
            let _ = match op {
                0 => ledger.transfer(from, to, amount),
                1 => ledger.freeze(to, from, amount),
                _ => ledger.pay(from, to, amount),
            };
        }
        prop_assert_eq!(ledger.total_supply(), supply);
    }
}

// --- id-counter and gas-accumulator width boundaries ---
//
// The million-HIT path leans on two u64 counters: the registry's
// monotone instance-id counter (every escrow address derives from it)
// and the per-transaction gas accumulator (summed into per-block
// totals). Both are checked, never wrapping: these properties pin the
// behaviour right at the top of the u64 space.

use dragoon_chain::{GasMeter, IdReserver};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Near the top of the id space the reserver stays strictly
    /// monotone and duplicate-free, and never hands out `u64::MAX`
    /// itself — so the registry's `id + 1` successor computation
    /// cannot wrap.
    #[test]
    fn id_reserver_is_monotone_and_never_yields_max(
        offset in 1u64..128,
        count in 1usize..64,
    ) {
        let base = u64::MAX - offset;
        let mut reserver = IdReserver::new(base);
        // Reservable ids are base..=MAX-1: exactly `offset` of them.
        let mut prev: Option<u64> = None;
        for _ in 0..count.min(offset as usize) {
            let id = reserver.reserve();
            prop_assert!(id < u64::MAX, "u64::MAX must never be handed out");
            if let Some(p) = prev {
                prop_assert!(id > p, "ids must be strictly increasing");
            }
            prop_assert!(reserver.is_reserved(id));
            prev = Some(id);
        }
    }

    /// The gas accumulator is exact right up to `u64::MAX`: charges
    /// that fit sum precisely (no saturation, no early panic).
    #[test]
    fn gas_meter_is_exact_at_the_u64_boundary(
        head in (u64::MAX - 1_000_000)..u64::MAX,
        tail in 0u64..1_000,
    ) {
        let mut meter = GasMeter::new();
        meter.charge("intrinsic", head);
        let extra = tail.min(u64::MAX - head);
        meter.charge("sstore", extra);
        prop_assert_eq!(meter.used(), head + extra);
        prop_assert_eq!(meter.total_for("intrinsic"), head);
    }
}

#[test]
#[should_panic(expected = "instance id space exhausted")]
fn id_reserver_panics_instead_of_wrapping() {
    let mut reserver = IdReserver::new(u64::MAX - 1);
    assert_eq!(reserver.reserve(), u64::MAX - 1);
    let _ = reserver.reserve(); // would be u64::MAX — must panic
}

#[test]
#[should_panic(expected = "transaction gas accumulator overflowed")]
fn gas_meter_panics_instead_of_wrapping() {
    let mut meter = GasMeter::new();
    meter.charge("intrinsic", u64::MAX);
    meter.charge("sstore", 1);
}
