//! Proving-pipeline equivalence: the differential suite for the async
//! proving service (`dragoon_protocol::proving`).
//!
//! The service's contract mirrors the parallel executor's: routing
//! agent proving through the keyed job queue and scoped worker pool
//! must leave committed chain state — and therefore the whole-market
//! report JSON — **bit-identical** to the inline serial path at zero
//! latency, and bit-identical to itself for every thread count at any
//! latency. These tests pin that property across:
//!
//! * sync (service disabled) vs async at zero modeled latency,
//! * nonzero modeled latency at 1, 2 and 8 executor/prover threads
//!   (report *and* proving counters must match — the counters are
//!   thread-independent by construction), plus the env-driven default
//!   thread budget CI sweeps via `DRAGOON_THREADS=1/4/8`,
//! * straggler handling: with latency pushing proofs past phase
//!   deadlines, every HIT still settles (⊥ for the missing workers),
//!   escrow drains exactly into rewards + refunds, and
//! * stats bookkeeping: `jobs = completed + dropped`, stale releases
//!   bounded by completions, cache counters populated.

use dragoon_sim::{run_market, MarketConfig, MarketSim, ProvingConfig};

/// The shared scenario: a mid-sized market with the default behaviour
/// mix (noisy workers, a random bot, a commit-no-reveal ghost), batched
/// settlement and gas-capped blocks. `exec_threads` stays 0 so the
/// resolved thread budget follows `DRAGOON_THREADS` — the CI matrix
/// varies it; in-process tests override it explicitly.
fn base(seed: u64) -> MarketConfig {
    MarketConfig {
        hits: 30,
        spawn_per_block: 6,
        workers: 28,
        worker_capacity: 4,
        seed,
        ..MarketConfig::default()
    }
}

fn with_proving(config: MarketConfig, ticks_per_kilocost: u64) -> MarketConfig {
    MarketConfig {
        proving: ProvingConfig {
            enabled: true,
            ticks_per_kilocost,
        },
        ..config
    }
}

/// Async proving at zero modeled latency is the sync pipeline: same
/// jobs, same keyed RNG streams, same release tick — only the compute
/// happens on the pool. The market must not be able to tell.
#[test]
fn async_at_zero_latency_equals_sync() {
    let sync = run_market(base(0xa51));
    let async_run = run_market(with_proving(base(0xa51), 0));
    assert_eq!(
        sync.to_json(),
        async_run.to_json(),
        "async proving at zero latency must be invisible to the market"
    );
    assert!(async_run.proving.jobs > 0, "the pipeline must carry jobs");
    assert_eq!(
        async_run.proving.latency_max, 0,
        "zero ticks_per_kilocost means zero release latency"
    );
    // The sync path runs the same unified job queue inline.
    assert_eq!(sync.proving.jobs, async_run.proving.jobs);
}

/// The determinism witness at nonzero latency: the report JSON *and*
/// the proving counters are byte-identical for every thread count.
/// `ticks_per_kilocost = 300` puts commit proofs (cost `2·N + 2`) at
/// ~4 ticks and evaluation proofs at 2–3, deep enough to reorder
/// releases across rounds and trip phase deadlines.
#[test]
fn reports_identical_across_thread_counts_at_nonzero_latency() {
    let run_at = |threads: usize| {
        run_market(MarketConfig {
            exec_threads: threads,
            ..with_proving(base(0xbee), 300)
        })
    };
    let serial = run_at(1);
    assert!(
        serial.proving.latency_max > 0,
        "the scenario must exercise real release latency"
    );
    for threads in [2, 8] {
        let parallel = run_at(threads);
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "market reports must be identical at {threads} prover threads"
        );
        assert_eq!(
            serial.proving_json(),
            parallel.proving_json(),
            "proving counters must be thread-independent at {threads} threads"
        );
    }
    // The env-driven budget (CI sweeps DRAGOON_THREADS=1/4/8) resolves
    // through the same code path and must land on the same bytes.
    let env_run = run_market(with_proving(base(0xbee), 300));
    assert_eq!(serial.to_json(), env_run.to_json());
    assert_eq!(serial.proving_json(), env_run.proving_json());
}

/// Stragglers: latency heavy enough that some proofs release after
/// their phase window closed. The deadline backstop settles those
/// sessions `⊥`, the engine discards the late outputs as stale, and
/// the ledger still conserves every escrowed coin.
#[test]
fn nonzero_latency_settles_bottom_and_conserves_escrow() {
    let config = with_proving(base(0x1a7e), 900);
    let budget = config.budget;
    let (report, chain) = MarketSim::new(config).run_keeping_chain();
    assert_eq!(report.hits_unfinished, 0, "the horizon must drain");
    assert!(report.proving.latency_max >= 4, "proofs must actually lag");
    // ⊥ settlements happened: slots whose reveal (or commit) never made
    // it before the deadline.
    let no_reveals: usize = report.outcomes.iter().map(|o| o.no_reveal).sum();
    assert!(no_reveals > 0, "latency must strand some reveals as ⊥");
    // Conservation: every settled instance drained its escrow, and the
    // frozen budgets split exactly into rewards + refunds.
    for id in chain.contract().hit_ids() {
        let hit = chain.contract().hit(id).expect("listed instance exists");
        assert!(hit.is_settled(), "hit #{id} left open");
        let escrow = chain.contract().hit_address(id).unwrap();
        assert_eq!(
            chain.ledger.balance(&escrow),
            0,
            "hit #{id} stranded coins in escrow"
        );
    }
    assert_eq!(
        report.rewards_paid + report.refunds,
        budget * report.hits_published as u128,
        "budgets must split exactly into rewards + refunds"
    );
}

/// Counter bookkeeping holds under latency: every job is either
/// released or dropped at the end of the run, stale releases are a
/// subset of completions, the queue peak is visible, and the keyed
/// proof cache absorbed the commit-path encryptions.
#[test]
fn proving_stats_account_for_every_job() {
    let report = run_market(with_proving(base(0x57a7), 400));
    let p = &report.proving;
    assert!(p.jobs > 0);
    assert_eq!(
        p.jobs,
        p.completed + p.dropped,
        "every job is released or dropped: {p:?}"
    );
    assert!(p.stale <= p.completed, "stale releases are completions");
    assert!(p.queue_peak > 0, "latency must queue outputs across ticks");
    assert_eq!(
        p.latency_hist.iter().sum::<u64>(),
        p.completed,
        "the latency histogram buckets exactly the released jobs"
    );
    assert!(
        p.cache_hits + p.cache_misses > 0,
        "commit proving must touch the keyed proof cache"
    );
}
