//! Real-vs-ideal comparison — the executable counterpart of the paper's
//! Theorem 1 ("Π_hit securely realizes F_hit in the C_hit-hybrid, random
//! oracle model").
//!
//! Strategy: run the real protocol Π_hit (over the gas-metered chain,
//! possibly under adversarial scheduling) and the ideal functionality
//! F_hit on the *same inputs* (same answers, same golden standards, same
//! requester strategy), then compare the joint outcomes the environment
//! can observe: which workers were paid, final balances, and what data
//! the requester obtained.

use dragoon_chain::{GasSchedule, ReversePolicy};
use dragoon_contract::Settlement;
use dragoon_core::quality::quality;
use dragoon_core::task::Answer;
use dragoon_core::workload::{draw_answer, imagenet_workload, AnswerModel, Workload};
use dragoon_ledger::{Address, Ledger};
use dragoon_protocol::ideal::IdealHit;
use dragoon_protocol::{driver, WorkerBehavior};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the ideal functionality with an honest requester who evaluates
/// every answer (rejecting the unqualified), on fixed plaintext answers.
fn run_ideal(workload: &Workload, answers: &[Option<Answer>]) -> (IdealHit, Address, Vec<Address>) {
    let mut ledger = Ledger::new();
    let requester = Address::from_byte(0xaa);
    ledger.mint(requester, workload.spec.budget);
    let workers: Vec<Address> = (0..answers.len() as u8)
        .map(|i| Address::from_byte(0x10 + i))
        .collect();
    let mut f = IdealHit::new(ledger);
    f.publish(
        requester,
        workload.spec.n,
        workload.spec.budget,
        workload.spec.k,
        workload.spec.range,
        workload.spec.theta,
        workload.golden.clone(),
    )
    .unwrap();
    for (w, a) in workers.iter().zip(answers) {
        f.submit_answer(*w, a.clone()).unwrap();
    }
    // Honest requester strategy: evaluate out-of-range answers via
    // outrange, low-quality via evaluate, stay silent on the rest.
    for (w, a) in workers.iter().zip(answers) {
        if let Some(a) = a {
            if let Some(i) = a.0.iter().position(|v| !workload.spec.range.contains(*v)) {
                f.outrange(requester, *w, i).unwrap();
            } else if quality(a, &workload.golden) < workload.spec.theta {
                f.evaluate(requester, *w).unwrap();
            }
        }
    }
    f.finalize();
    (f, requester, workers)
}

/// Draws deterministic answers for a mixed crowd and runs both worlds.
fn compare_worlds(accuracies: &[f64], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let workload = imagenet_workload(4_000_000, &mut rng);

    // Fix the answers first so both worlds see identical inputs.
    let answers: Vec<Answer> = accuracies
        .iter()
        .map(|&acc| {
            draw_answer(
                &AnswerModel::Diligent { accuracy: acc },
                &workload.truth,
                &workload.spec.range,
                &mut rng,
            )
        })
        .collect();

    // Ideal world.
    let ideal_answers: Vec<Option<Answer>> = answers.iter().cloned().map(Some).collect();
    let (ideal, _ideal_requester, ideal_workers) = run_ideal(&workload, &ideal_answers);

    // Real world: workers replay the same fixed answers.
    let behaviors: Vec<WorkerBehavior> = answers
        .iter()
        .map(|a| WorkerBehavior::Fixed(a.clone()))
        .collect();
    let report = driver::run(
        driver::RunConfig {
            workload: workload.clone(),
            behaviors,
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );

    // Compare payment outcomes worker by worker.
    for ((iw, rw), answer) in ideal_workers.iter().zip(&report.workers).zip(&answers) {
        let ideal_paid = ideal.was_paid(iw).unwrap_or(false);
        let real_paid = matches!(report.settlements.get(rw), Some(Settlement::Paid));
        assert_eq!(
            ideal_paid,
            real_paid,
            "payment mismatch for quality {}",
            quality(answer, &workload.golden)
        );
        let reward = workload.spec.reward_per_worker();
        let ideal_balance = ideal.ledger.balance(iw);
        let real_balance = report.balances[rw];
        assert_eq!(ideal_balance, if ideal_paid { reward } else { 0 });
        assert_eq!(real_balance, ideal_balance);
    }

    // The requester's collected data must coincide: in the ideal world
    // the requester receives all K answers; in the real world it
    // decrypts them. Accepted answers must match exactly.
    for (addr, collected) in &report.collected {
        let idx = report.workers.iter().position(|w| w == addr).unwrap();
        assert_eq!(
            collected, &answers[idx],
            "requester must recover the submitted data"
        );
    }
}

#[test]
fn all_qualified_workers_same_outcome() {
    compare_worlds(&[1.0, 1.0, 1.0, 1.0], 1);
}

#[test]
fn mixed_quality_same_outcome() {
    compare_worlds(&[1.0, 0.9, 0.4, 0.0], 2);
}

#[test]
fn all_unqualified_same_outcome() {
    compare_worlds(&[0.0, 0.0, 0.0, 0.0], 3);
}

#[test]
fn several_seeds_randomized() {
    for seed in 10..15 {
        compare_worlds(&[0.95, 0.7, 0.5, 0.2], seed);
    }
}

#[test]
fn rushing_adversary_does_not_change_outcomes() {
    // Same inputs, adversarial (reversed) scheduling each round: the
    // outcomes must match the ideal world exactly as with FIFO.
    let mut rng = StdRng::seed_from_u64(99);
    let workload = imagenet_workload(4_000_000, &mut rng);
    let answers: Vec<Answer> = [1.0, 1.0, 0.0, 1.0]
        .iter()
        .map(|&acc| {
            draw_answer(
                &AnswerModel::Diligent { accuracy: acc },
                &workload.truth,
                &workload.spec.range,
                &mut rng,
            )
        })
        .collect();
    let ideal_answers: Vec<Option<Answer>> = answers.iter().cloned().map(Some).collect();
    let (ideal, _, ideal_workers) = run_ideal(&workload, &ideal_answers);

    let behaviors: Vec<WorkerBehavior> = answers
        .iter()
        .map(|a| WorkerBehavior::Fixed(a.clone()))
        .collect();
    let report = driver::run_with_policy(
        driver::RunConfig {
            workload,
            behaviors,
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut ReversePolicy,
        &mut rng,
    );
    for (iw, rw) in ideal_workers.iter().zip(&report.workers) {
        assert_eq!(
            ideal.was_paid(iw).unwrap_or(false),
            matches!(report.settlements.get(rw), Some(Settlement::Paid)),
        );
    }
}

#[test]
fn ideal_leakage_is_length_bounded() {
    // Confidentiality: during collection the adversary learns only who
    // answered and the length — check the leakage log has no payload.
    let mut rng = StdRng::seed_from_u64(5);
    let workload = imagenet_workload(4_000, &mut rng);
    let answers: Vec<Option<Answer>> = (0..4)
        .map(|_| {
            Some(draw_answer(
                &AnswerModel::Diligent { accuracy: 0.8 },
                &workload.truth,
                &workload.spec.range,
                &mut rng,
            ))
        })
        .collect();
    let (ideal, _, _) = run_ideal(&workload, &answers);
    for leak in ideal.leakage() {
        if let dragoon_protocol::Leakage::Answering { len, .. } = leak {
            assert_eq!(*len, 106);
        }
    }
}
