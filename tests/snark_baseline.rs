//! End-to-end tests of the generic zk-proof baseline: Groth16 over the
//! VPKE statement, exactly the pipeline Tables I & II measure — run at
//! reduced key width so the suite stays fast. Trusted setup routes
//! through the process-wide CRS cache, so the four tests that share the
//! TEST_BITS circuit shape pay for setup once.

use dragoon_crypto::Fr;
use dragoon_zkp::circuits::{vpke_circuit_with_bits, VpkeInstance};
use dragoon_zkp::jubjub::{jub_decrypt_point, JubPoint};
use dragoon_zkp::{crs, groth16, ConstraintSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Key width for the fast tests (full protocol uses 251 bits; the
/// circuit scales linearly, so 24 bits keeps each test ~100x cheaper).
const TEST_BITS: usize = 24;

struct Fixture {
    instance: VpkeInstance,
    cs: ConstraintSystem,
    publics: Vec<Fr>,
}

fn fixture(rng: &mut StdRng, message: u64) -> (Fixture, Fr) {
    // A small key that fits TEST_BITS.
    let sk = Fr::from_u64(rng.gen_range(1..(1u64 << TEST_BITS)));
    let g = JubPoint::generator();
    let pk = g.mul_scalar(&sk);
    let rho = Fr::from_u64(rng.gen_range(1..(1u64 << TEST_BITS)));
    let ct = dragoon_zkp::jubjub::JubCiphertext {
        c1: g.mul_scalar(&rho),
        c2: g
            .mul_scalar(&Fr::from_u64(message))
            .add(&pk.mul_scalar(&rho)),
    };
    let m_point = jub_decrypt_point(&sk, &ct);
    assert_eq!(m_point, g.mul_scalar(&Fr::from_u64(message)));
    let instance = VpkeInstance { ct, pk, m_point };
    let cs = vpke_circuit_with_bits(&instance, &sk, TEST_BITS);
    let mut publics = instance.public_inputs();
    publics.push(g.x);
    publics.push(g.y);
    (
        Fixture {
            instance,
            cs,
            publics,
        },
        sk,
    )
}

#[test]
fn snark_proves_honest_decryption() {
    let mut rng = StdRng::seed_from_u64(1);
    let (f, _sk) = fixture(&mut rng, 1);
    f.cs.is_satisfied().unwrap();
    let pk = crs::shared_cache().get_or_setup(&f.cs, &mut rng).unwrap();
    let proof = groth16::prove(&pk, &f.cs, &mut rng).unwrap();
    assert!(groth16::verify(&pk.vk, &proof, &f.publics).unwrap());
}

#[test]
fn snark_rejects_wrong_statement() {
    let mut rng = StdRng::seed_from_u64(2);
    let (f, _sk) = fixture(&mut rng, 1);
    let pk = crs::shared_cache().get_or_setup(&f.cs, &mut rng).unwrap();
    let proof = groth16::prove(&pk, &f.cs, &mut rng).unwrap();
    // Tamper with the claimed message point in the public inputs.
    let mut bad_publics = f.publics.clone();
    bad_publics[6] += Fr::one();
    assert!(!groth16::verify(&pk.vk, &proof, &bad_publics).unwrap());
}

#[test]
fn snark_witness_for_false_claim_unsatisfiable() {
    let mut rng = StdRng::seed_from_u64(3);
    let (f, sk) = fixture(&mut rng, 1);
    // Claim the ciphertext decrypts to 0·G instead of 1·G.
    let lying_instance = VpkeInstance {
        ct: f.instance.ct,
        pk: f.instance.pk,
        m_point: JubPoint::identity(),
    };
    let cs = vpke_circuit_with_bits(&lying_instance, &sk, TEST_BITS);
    assert!(cs.is_satisfied().is_err(), "no witness for a false claim");
    let pk = crs::shared_cache().get_or_setup(&cs, &mut rng).unwrap();
    assert!(groth16::prove(&pk, &cs, &mut rng).is_err());
}

#[test]
fn proof_not_transferable_across_instances() {
    let mut rng = StdRng::seed_from_u64(4);
    let (f1, _) = fixture(&mut rng, 1);
    let (f2, _) = fixture(&mut rng, 0);
    let pk = crs::shared_cache().get_or_setup(&f1.cs, &mut rng).unwrap();
    let proof = groth16::prove(&pk, &f1.cs, &mut rng).unwrap();
    assert!(groth16::verify(&pk.vk, &proof, &f1.publics).unwrap());
    // The same proof against the other instance's publics fails.
    assert!(!groth16::verify(&pk.vk, &proof, &f2.publics).unwrap());
}

#[test]
fn circuit_size_scales_with_key_bits() {
    let mut rng = StdRng::seed_from_u64(5);
    let (f_small, sk) = fixture(&mut rng, 1);
    let cs_large = vpke_circuit_with_bits(&f_small.instance, &sk, 2 * TEST_BITS);
    assert!(
        cs_large.num_constraints() > 3 * f_small.cs.num_constraints() / 2,
        "constraints must grow with key width: {} vs {}",
        cs_large.num_constraints(),
        f_small.cs.num_constraints()
    );
    cs_large.is_satisfied().unwrap();
}
