//! Trace equivalence: the differential suite for `dragoon-trace`.
//!
//! The deterministic event stream's contract mirrors the report JSON's:
//! it is a pure function of `(seed, config)` — byte-identical at every
//! executor thread count and under every store mode — and recording it
//! must not perturb the market (a trace-disabled run's report is
//! byte-identical to a traced run's).
//!
//! Captures flip process-global flags, so every test here serializes on
//! one lock: a `run_market` outside a capture session would otherwise
//! emit events into a concurrent test's stream.

use dragoon_net::{NetConfig, PartitionWindow, RelaySpec};
use dragoon_sim::{run_market, MarketConfig, PersistConfig, ProvingConfig};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dragoon-traceeq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A marketplace config exercising every deterministic span source:
/// block execution, settlement verification, async proving with modeled
/// latency, and the persistent store's append/snapshot cadence.
fn full_config(
    exec_threads: usize,
    store_dir: std::path::PathBuf,
    pipelined: bool,
) -> MarketConfig {
    let base = if pipelined {
        PersistConfig::pipelined(store_dir)
    } else {
        PersistConfig::new(store_dir)
    };
    MarketConfig {
        hits: 24,
        spawn_per_block: 6,
        workers: 25,
        worker_capacity: 4,
        seed: 0x7e57_7ace,
        exec_threads,
        proving: ProvingConfig {
            enabled: true,
            ticks_per_kilocost: 1,
        },
        persist: Some(PersistConfig {
            snapshot_every: 4,
            ..base
        }),
        ..MarketConfig::default()
    }
}

/// Runs the config under a fresh capture session and returns the drained
/// deterministic stream.
fn captured_stream(config: MarketConfig) -> Vec<String> {
    let capture = dragoon_trace::start_capture();
    let _ = run_market(config);
    capture.finish()
}

fn assert_covers(stream: &[String], spans: &[&str]) {
    for span in spans {
        let needle = format!("\"span\":\"{span}\"");
        assert!(
            stream.iter().any(|l| l.contains(&needle)),
            "stream must contain {span} events ({} lines total)",
            stream.len()
        );
    }
}

/// The deterministic stream is byte-identical at 1, 4 and 8 executor
/// threads — the tracing analogue of the report-JSON differential.
#[test]
fn deterministic_stream_identical_across_thread_counts() {
    let _guard = lock();
    let baseline = captured_stream(full_config(1, scratch("t1"), true));
    assert!(!baseline.is_empty(), "the traced run must emit events");
    assert_covers(
        &baseline,
        &[
            "execute", "verify", "prove", "release", "persist", "snapshot",
        ],
    );
    for threads in [4usize, 8] {
        let stream = captured_stream(full_config(threads, scratch(&format!("t{threads}")), true));
        assert_eq!(
            baseline, stream,
            "deterministic stream diverged at {threads} threads"
        );
    }
}

/// The deterministic stream is byte-identical under the synchronous
/// store and the pipelined lifecycle: persistence events carry the round
/// height only, never full-vs-delta shape or byte counts (those are
/// store-mode details, visible in the wall layer and the metrics).
#[test]
fn deterministic_stream_identical_across_store_modes() {
    let _guard = lock();
    let sync = captured_stream(full_config(1, scratch("sync"), false));
    let piped = captured_stream(full_config(1, scratch("pipe"), true));
    assert!(!sync.is_empty());
    assert_eq!(
        sync, piped,
        "deterministic stream must not depend on the store mode"
    );
}

/// Recording both trace layers must not change the market: the traced
/// run's report JSON is byte-identical to a trace-disabled run's.
#[test]
fn traced_run_report_identical_to_disabled_run() {
    let _guard = lock();
    let config = full_config(2, scratch("off"), true);
    let disabled = run_market(MarketConfig {
        persist: Some(PersistConfig {
            snapshot_every: 4,
            ..PersistConfig::pipelined(scratch("off2"))
        }),
        ..config.clone()
    });
    let capture = dragoon_trace::start_full_capture();
    let traced = run_market(config);
    let events = capture.finish();
    assert!(!events.is_empty(), "the full capture must record events");
    assert_eq!(
        disabled.to_json(),
        traced.to_json(),
        "tracing must not change the market report"
    );
    assert_eq!(disabled.scheduler_json(), traced.scheduler_json());
    assert_eq!(disabled.proving_json(), traced.proving_json());
    assert_eq!(disabled.persist_json(), traced.persist_json());
}

/// The network layer's gossip/fork/reorg events ride the same stream:
/// a lossy 4-node run covers all three kinds, and two identical runs
/// produce byte-identical streams.
#[test]
fn net_stream_covers_gossip_forks_reorgs() {
    let _guard = lock();
    let config = || MarketConfig {
        hits: 40,
        spawn_per_block: 4,
        workers: 30,
        seed: 0xd1a6_0006,
        net: Some(NetConfig {
            nodes: 4,
            delay: (1, 3),
            drop_per_mille: 60,
            duplicate_per_mille: 40,
            fork_patience: 3,
            partitions: vec![PartitionWindow {
                start: 10,
                end: 30,
                island: vec![2, 3],
            }],
            relay: RelaySpec::WithholdRelease { period: 6 },
            ..NetConfig::default()
        }),
        ..MarketConfig::default()
    };
    let first = captured_stream(config());
    assert_covers(&first, &["execute", "gossip", "fork", "reorg"]);
    let second = captured_stream(config());
    assert_eq!(first, second, "the net-enabled stream must be reproducible");
}
